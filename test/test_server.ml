(* The serve layer: wire-codec round-trips, strict rejection of truncated
   and corrupted frames, and the daemon end to end over a unix socket
   (answers checked against the BFS oracle, malformed-frame recovery,
   oversized-frame disconnect, stats/shutdown verbs).

   The daemon runs in a spawned domain inside this process; every test
   drains it through the protocol's shutdown verb and joins the domain,
   so a hang here is a drain bug, not a test artefact. *)

module SP = Server_protocol

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Codec helpers *)

let encode_request r =
  let b = Buffer.create 64 in
  SP.add_request b r;
  Buffer.contents b

let encode_response r =
  let b = Buffer.create 64 in
  SP.add_response b r;
  Buffer.contents b

let request_equal a b =
  match (a, b) with
  | SP.Reach p, SP.Reach q -> p = q
  | SP.Match p, SP.Match q -> Pattern_io.to_string p = Pattern_io.to_string q
  | SP.Stats, SP.Stats
  | SP.Metrics, SP.Metrics
  | SP.Dump, SP.Dump
  | SP.Shutdown, SP.Shutdown ->
      true
  | _ -> false

let response_equal a b =
  match (a, b) with
  | SP.Answers p, SP.Answers q -> p = q
  | SP.Matches p, SP.Matches q -> Pattern.result_equal p q
  | SP.Text s, SP.Text t | SP.Error s, SP.Error t -> s = t
  | _ -> false

let request_print = function
  | SP.Reach pairs ->
      Printf.sprintf "Reach [%s]"
        (String.concat "; "
           (Array.to_list
              (Array.map (fun (u, v) -> Printf.sprintf "(%d,%d)" u v) pairs)))
  | SP.Match p -> "Match " ^ String.escaped (Pattern_io.to_string p)
  | SP.Stats -> "Stats"
  | SP.Metrics -> "Metrics"
  | SP.Dump -> "Dump"
  | SP.Shutdown -> "Shutdown"

let response_print = function
  | SP.Answers a ->
      Printf.sprintf "Answers [%s]"
        (String.concat ";" (Array.to_list (Array.map string_of_bool a)))
  | SP.Matches None -> "Matches None"
  | SP.Matches (Some rows) ->
      Printf.sprintf "Matches (%d rows)" (Array.length rows)
  | SP.Text s -> "Text " ^ String.escaped s
  | SP.Error s -> "Error " ^ String.escaped s

let roundtrip_request r =
  let s = encode_request r in
  match SP.decode_request s ~pos:0 with
  | Some (SP.Frame r', next) when next = String.length s -> request_equal r r'
  | Some (SP.Frame _, next) ->
      QCheck2.Test.fail_reportf "frame consumed %d of %d bytes" next
        (String.length s)
  | Some (SP.Malformed msg, _) ->
      QCheck2.Test.fail_reportf "own encoding rejected: %s" msg
  | None -> QCheck2.Test.fail_report "own encoding judged incomplete"

let roundtrip_response r =
  let s = encode_response r in
  match SP.decode_response s ~pos:0 with
  | Some (SP.Frame r', next) when next = String.length s -> response_equal r r'
  | Some (SP.Frame _, next) ->
      QCheck2.Test.fail_reportf "frame consumed %d of %d bytes" next
        (String.length s)
  | Some (SP.Malformed msg, _) ->
      QCheck2.Test.fail_reportf "own encoding rejected: %s" msg
  | None -> QCheck2.Test.fail_report "own encoding judged incomplete"

(* ------------------------------------------------------------------ *)
(* Codec: unit round-trips *)

let test_roundtrip_variants () =
  let requests =
    [
      SP.Reach [||];
      SP.Reach [| (0, 0) |];
      SP.Reach [| (1, 2); (3, 4); (0xFFFF_FFFF, 0) |];
      SP.Match (Testutil.recommendation_pattern ());
      SP.Stats;
      SP.Metrics;
      SP.Dump;
      SP.Shutdown;
    ]
  in
  List.iter
    (fun r ->
      Testutil.check_bool (request_print r) true (roundtrip_request r))
    requests;
  let responses =
    [
      SP.Answers [||];
      SP.Answers [| true; false; true |];
      SP.Matches None;
      SP.Matches (Some [||]);
      SP.Matches (Some [| [| 1; 2 |]; [||]; [| 7 |] |]);
      SP.Text "";
      SP.Text "route: grail\nqps: 12.5";
      SP.Error "malformed frame: unsupported protocol version 9";
    ]
  in
  List.iter
    (fun r ->
      Testutil.check_bool (response_print r) true (roundtrip_response r))
    responses

let test_u32_bounds () =
  (* A pair component outside the u32 range must be refused at encode
     time, not silently wrapped on the wire. *)
  Alcotest.check_raises "count overflow"
    (Invalid_argument "Server_protocol: u32 field out of range") (fun () ->
      ignore (encode_request (SP.Reach [| (0x1_0000_0000, 0) |])))

(* ------------------------------------------------------------------ *)
(* Codec: corruption (unit) *)

let decode_req s = SP.decode_request s ~pos:0

let expect_malformed what s =
  match decode_req s with
  | Some (SP.Malformed _, next) when next = String.length s -> ()
  | Some (SP.Malformed _, next) ->
      Alcotest.failf "%s: malformed but next = %d, not %d" what next
        (String.length s)
  | Some (SP.Frame _, _) -> Alcotest.failf "%s: accepted" what
  | None -> Alcotest.failf "%s: judged incomplete" what

let test_corruption_cases () =
  let valid = encode_request (SP.Reach [| (5, 9) |]) in
  (* Wrong protocol version. *)
  let bad_version = Bytes.of_string valid in
  Bytes.set bad_version 4 '\009';
  expect_malformed "bad version" (Bytes.to_string bad_version);
  (* Unknown request tag. *)
  let bad_tag = Bytes.of_string valid in
  Bytes.set bad_tag 5 'Z';
  expect_malformed "unknown tag" (Bytes.to_string bad_tag);
  (* Declared length one byte short: the body read crosses the frame
     boundary and must be rejected, not read out of the next frame. *)
  let short = Bytes.of_string valid in
  Bytes.set_int32_le short 0
    (Int32.of_int (String.length valid - 4 - 1));
  expect_malformed "body crosses frame boundary"
    (Bytes.sub_string short 0 (Bytes.length short - 1));
  (* Trailing junk inside the declared frame. *)
  let padded = Bytes.of_string (valid ^ "\000") in
  Bytes.set_int32_le padded 0 (Int32.of_int (String.length valid - 4 + 1));
  expect_malformed "trailing bytes in frame" (Bytes.to_string padded);
  (* Frame too short to hold version and tag. *)
  expect_malformed "one-byte payload" "\001\000\000\000\001";
  (* An answers flag byte other than 0/1. *)
  let resp = Bytes.of_string (encode_response (SP.Answers [| true |])) in
  Bytes.set resp (Bytes.length resp - 1) '\002';
  (match SP.decode_response (Bytes.to_string resp) ~pos:0 with
  | Some (SP.Malformed _, _) -> ()
  | Some (SP.Frame _, _) -> Alcotest.fail "answer byte 2 accepted"
  | None -> Alcotest.fail "answer byte 2 judged incomplete");
  (* An oversized declared length cannot be resynchronised. *)
  let oversized = "\255\255\255\127rest never arrives" in
  Alcotest.check_raises "oversized length prefix"
    (SP.Parse_error
       (0, "declared frame length 2147483647 exceeds the 16777216-byte cap"))
    (fun () -> ignore (decode_req oversized))

let test_frame_ready () =
  let valid = encode_request SP.Stats in
  Testutil.check_bool "empty buffer" false (SP.frame_ready "" ~pos:0);
  Testutil.check_bool "partial prefix" false (SP.frame_ready "\006\000" ~pos:0);
  Testutil.check_bool "one byte short" false
    (SP.frame_ready (String.sub valid 0 (String.length valid - 1)) ~pos:0);
  Testutil.check_bool "complete frame" true (SP.frame_ready valid ~pos:0);
  Testutil.check_bool "oversized is ready (to fail)" true
    (SP.frame_ready "\255\255\255\127" ~pos:0);
  Testutil.check_bool "past the frame" false
    (SP.frame_ready valid ~pos:(String.length valid))

let test_stream_decode () =
  let reqs = [ SP.Reach [| (1, 2); (3, 4) |]; SP.Stats; SP.Shutdown ] in
  let stream = String.concat "" (List.map encode_request reqs) in
  let rec go pos acc =
    if pos = String.length stream then List.rev acc
    else
      match SP.decode_request stream ~pos with
      | Some (SP.Frame r, next) ->
          Testutil.check_bool "positions advance" true (next > pos);
          go next (r :: acc)
      | Some (SP.Malformed msg, _) -> Alcotest.failf "malformed: %s" msg
      | None -> Alcotest.fail "incomplete mid-stream"
  in
  let decoded = go 0 [] in
  Testutil.check_int "frame count" (List.length reqs) (List.length decoded);
  List.iter2
    (fun a b -> Testutil.check_bool (request_print a) true (request_equal a b))
    reqs decoded

(* ------------------------------------------------------------------ *)
(* Codec: qcheck properties *)

let request_gen =
  let open QCheck2.Gen in
  let reach =
    let* n = int_range 0 40 in
    let* pairs =
      array_size (pure n)
        (pair (int_range 0 0xFFFF_FFFF) (int_range 0 0xFFFF_FFFF))
    in
    pure (SP.Reach pairs)
  in
  frequency
    [ (5, reach); (1, pure SP.Stats); (1, pure SP.Metrics);
      (1, pure SP.Dump); (1, pure SP.Shutdown) ]

let response_gen =
  let open QCheck2.Gen in
  let answers =
    let* n = int_range 0 60 in
    let* a = array_size (pure n) bool in
    pure (SP.Answers a)
  in
  let text =
    let* s = string_size (int_range 0 120) in
    pure (SP.Text s)
  in
  let error =
    let* s = string_size (int_range 0 120) in
    pure (SP.Error s)
  in
  let matches =
    let* rows =
      list_size (int_range 0 5)
        (array_size (int_range 0 4) (int_range 0 100000))
    in
    pure (SP.Matches (Some (Array.of_list rows)))
  in
  frequency
    [ (4, answers); (2, text); (2, error); (2, matches);
      (1, pure (SP.Matches None)) ]

let qcheck_roundtrip_request =
  Testutil.qtest "request round-trips" (request_gen, request_print)
    roundtrip_request

let qcheck_roundtrip_response =
  Testutil.qtest "response round-trips" (response_gen, response_print)
    roundtrip_response

let qcheck_roundtrip_pattern =
  Testutil.qtest ~count:100 "pattern request round-trips"
    (Testutil.arbitrary_graph_pattern ())
    (fun (_g, p) -> roundtrip_request (SP.Match p))

let qcheck_truncation =
  Testutil.qtest "every strict prefix is incomplete"
    (request_gen, request_print) (fun r ->
      let s = encode_request r in
      for k = 0 to String.length s - 1 do
        match SP.decode_request (String.sub s 0 k) ~pos:0 with
        | None -> ()
        | Some _ ->
            QCheck2.Test.fail_reportf "prefix of %d/%d bytes decoded" k
              (String.length s)
      done;
      true)

let qcheck_corruption =
  let open QCheck2.Gen in
  let gen = triple request_gen (int_range 0 100000) (int_range 0 255) in
  let print (r, i, b) =
    Printf.sprintf "%s, byte %d := %d" (request_print r) i b
  in
  Testutil.qtest ~count:500 "single-byte corruption never desyncs"
    (gen, print) (fun (r, i, b) ->
      let s = Bytes.of_string (encode_request r) in
      Bytes.set s (i mod Bytes.length s) (Char.chr b);
      let s = Bytes.to_string s in
      match SP.decode_request s ~pos:0 with
      | None -> true (* corrupted length prefix now claims more bytes *)
      | Some (_, next) ->
          (* A frame or a malformed verdict must stay within the buffer:
             the decoder never reads past what it was given. *)
          next > 0 && next <= String.length s
      | exception SP.Parse_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Daemon end to end *)

let random_graph ~n ~m ~seed =
  let rng = Random.State.make [| seed |] in
  let labels = Array.init n (fun _ -> Random.State.int rng 3) in
  let edges =
    List.init m (fun _ -> (Random.State.int rng n, Random.State.int rng n))
  in
  Digraph.make ~n ~labels edges

let fresh_sock () =
  let path = Filename.temp_file "qpgc_serve" ".sock" in
  Sys.remove path;
  path

let rec wait_ready ready n =
  if not (Atomic.get ready) then (
    if n = 0 then Alcotest.fail "server did not become ready";
    Unix.sleepf 0.01;
    wait_ready ready (n - 1))

(* Run [f sock] against a daemon serving [engine] in a spawned domain;
   drain it with the shutdown verb afterwards and return [f]'s result
   together with the daemon's totals. *)
let with_server ?max_frame ?queue_max ?http_listeners ?slow_us ?sample_every
    ?frame_hook engine f =
  let sock = fresh_sock () in
  let ready = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Server.run ?max_frame ?queue_max ?http_listeners ?slow_us
          ?sample_every ?frame_hook
          ~on_ready:(fun () -> Atomic.set ready true)
          ~listeners:[ Server.Unix_socket sock ] engine)
  in
  let drain () =
    (try
       let c = Server_client.connect_unix sock in
       let (_ : string) = Server_client.shutdown c in
       Server_client.close c
     with _ -> () (* already draining *));
    let totals = Domain.join d in
    (try Sys.remove sock with Sys_error _ -> ());
    totals
  in
  match
    wait_ready ready 1000;
    f sock
  with
  | v -> (v, drain ())
  | exception e ->
      let (_ : Server.totals) = drain () in
      raise e

let with_client sock f =
  let c = Server_client.connect_unix sock in
  Fun.protect ~finally:(fun () -> Server_client.close c) (fun () -> f c)

let test_eval_in_process () =
  let g = random_graph ~n:120 ~m:400 ~seed:17 in
  let rng = Random.State.make [| 4 |] in
  let pairs = Reach_query.random_pairs rng g ~count:200 in
  Testutil.check_bool "engine eval matches the BFS oracle" true
    (Server.eval (Server.engine_of_graph g) pairs
    = Reach_query.eval_batch Reach_query.Bfs g pairs)

(* Text snapshots carry no kind byte; load_engine must still tell a text
   compression from a text graph (regression: the daemon used to feed
   text .qc files to the plain graph parser). *)
let test_load_engine_text () =
  let g = random_graph ~n:80 ~m:240 ~seed:29 in
  let rng = Random.State.make [| 7 |] in
  let pairs = Reach_query.random_pairs rng g ~count:150 in
  let oracle = Reach_query.eval_batch Reach_query.Bfs g pairs in
  let gfile = Filename.temp_file "qpgc_srv" ".g" in
  let qcfile = Filename.temp_file "qpgc_srv" ".qc" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun f -> try Sys.remove f with Sys_error _ -> ())
        [ gfile; qcfile ])
    (fun () ->
      Graph_io.save gfile g;
      Compressed_io.save qcfile (Compress_reach.compress g);
      let eg = Server.load_engine gfile in
      Testutil.check_bool "text graph engine answers" true
        (Server.eval eg pairs = oracle);
      let ec = Server.load_engine qcfile in
      Testutil.check_bool "text .qc takes the compressed route" true
        (Server.engine_route ec = "index");
      Testutil.check_bool "text .qc engine answers" true
        (Server.eval ec pairs = oracle))

let test_e2e_reach () =
  let n = 300 in
  let g = random_graph ~n ~m:900 ~seed:11 in
  let rng = Random.State.make [| 99 |] in
  let pairs = Reach_query.random_pairs rng g ~count:500 in
  let expected = Reach_query.eval_batch Reach_query.Bfs g pairs in
  let (), totals =
    with_server (Server.engine_of_graph g) (fun sock ->
        with_client sock (fun c ->
            let half = Array.length pairs / 2 in
            let a = Server_client.reach c (Array.sub pairs 0 half) in
            let b =
              Server_client.reach c
                (Array.sub pairs half (Array.length pairs - half))
            in
            Testutil.check_bool "served answers match the BFS oracle" true
              (Array.append a b = expected);
            (* An out-of-range id draws an error reply, not an answer. *)
            match Server_client.reach c [| (0, n) |] with
            | _ -> Alcotest.fail "out-of-range id was answered"
            | exception Failure msg ->
                Testutil.check_bool "error names the bound" true
                  (contains ~sub:"out of range" msg)))
  in
  Testutil.check_int "queries counted" (Array.length pairs)
    totals.Server.queries;
  Testutil.check_bool "frames counted" true (totals.Server.frames >= 2);
  Testutil.check_bool "batches dispatched" true (totals.Server.batches >= 1)

let test_e2e_pattern () =
  let g = Testutil.recommendation () in
  let p = Testutil.recommendation_pattern () in
  let expected = Bounded_sim.eval p g in
  let (), _totals =
    with_server (Server.engine_of_graph g) (fun sock ->
        with_client sock (fun c ->
            Testutil.check_bool "served match equals direct evaluation" true
              (Pattern.result_equal (Server_client.match_pattern c p) expected)))
  in
  ()

let test_e2e_stats () =
  let g = random_graph ~n:80 ~m:200 ~seed:23 in
  let engine = Server.engine_of_graph g in
  let route = Server.engine_route engine in
  let (), _totals =
    with_server engine (fun sock ->
        with_client sock (fun c ->
            let (_ : bool array) = Server_client.reach c [| (0, 1) |] in
            let stats = Server_client.stats c in
            Testutil.check_bool "stats names the committed route" true
              (contains ~sub:("route: " ^ route) stats);
            Testutil.check_bool "stats reports latency quantiles" true
              (contains ~sub:"latency_us: p50" stats);
            let metrics = Server_client.metrics c in
            Testutil.check_bool "metrics exports the frame counter" true
              (contains ~sub:"frames" metrics)))
  in
  ()

(* Raw-socket client, for frames Server_client refuses to send. *)
let raw_connect sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  fd

let raw_send fd s =
  let n = Unix.write_substring fd s 0 (String.length s) in
  Testutil.check_int "short raw write" (String.length s) n

let raw_response fd buf =
  let scratch = Bytes.create 4096 in
  let rec go () =
    match SP.decode_response (Buffer.contents buf) ~pos:0 with
    | Some (d, next) ->
        let rest = Buffer.sub buf next (Buffer.length buf - next) in
        Buffer.clear buf;
        Buffer.add_string buf rest;
        d
    | None ->
        let n = Unix.read fd scratch 0 (Bytes.length scratch) in
        if n = 0 then Alcotest.fail "connection closed while awaiting reply";
        Buffer.add_subbytes buf scratch 0 n;
        go ()
  in
  go ()

let rec read_until_eof fd scratch =
  if Unix.read fd scratch 0 (Bytes.length scratch) > 0 then
    read_until_eof fd scratch

let test_e2e_malformed_recovery () =
  let g = random_graph ~n:50 ~m:100 ~seed:3 in
  let (), totals =
    with_server (Server.engine_of_graph g) (fun sock ->
        let fd = raw_connect sock in
        Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
            let buf = Buffer.create 256 in
            (* A delimited-but-invalid frame: bad version byte. *)
            let frame =
              Bytes.of_string (encode_request (SP.Reach [| (1, 2) |]))
            in
            Bytes.set frame 4 '\009';
            raw_send fd (Bytes.to_string frame);
            (match raw_response fd buf with
            | SP.Frame (SP.Error msg) ->
                Testutil.check_bool "reply names the malformed frame" true
                  (contains ~sub:"malformed" msg)
            | _ -> Alcotest.fail "expected an error reply");
            (* The stream is still in sync: the next frame is served. *)
            raw_send fd (encode_request (SP.Reach [| (7, 7) |]));
            match raw_response fd buf with
            | SP.Frame (SP.Answers a) ->
                Testutil.check_bool "reflexive answer after recovery" true
                  (a = [| true |])
            | _ -> Alcotest.fail "expected answers after recovery"))
  in
  Testutil.check_int "malformed frame counted" 1 totals.Server.malformed;
  Testutil.check_int "valid query still counted" 1 totals.Server.queries

let test_e2e_oversized_disconnect () =
  let g = random_graph ~n:50 ~m:100 ~seed:3 in
  let (), _totals =
    with_server (Server.engine_of_graph g) (fun sock ->
        let fd = raw_connect sock in
        Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
            let buf = Buffer.create 256 in
            (* Length prefix claiming 2 GiB: unrecoverable desync. *)
            raw_send fd "\255\255\255\127";
            (match raw_response fd buf with
            | SP.Frame (SP.Error msg) ->
                Testutil.check_bool "reply names the length cap" true
                  (contains ~sub:"exceeds the" msg)
            | _ -> Alcotest.fail "expected an error reply");
            (* ... after which the server hangs up. *)
            read_until_eof fd (Bytes.create 4096)))
  in
  ()

(* Slow frames must land in the flight recorder with their trace ids.
   The latency is injected through [frame_hook] (test-only), so the slow
   path is exercised deterministically; sampling is off, so the dump
   frame itself — fast — must stay out of the ring. *)
let test_e2e_flight_recorder () =
  let g = random_graph ~n:40 ~m:80 ~seed:13 in
  let hook = function SP.Reach _ -> Unix.sleepf 0.005 | _ -> () in
  let (), _totals =
    with_server ~slow_us:1000.0 ~sample_every:0 ~frame_hook:hook
      (Server.engine_of_graph g)
      (fun sock ->
        with_client sock (fun c ->
            let (_ : bool array) = Server_client.reach c [| (1, 2) |] in
            let dump = Server_client.dump c in
            Testutil.check_bool "slow reach frame recorded" true
              (contains ~sub:"\"name\":\"reach\"" dump);
            Testutil.check_bool "entry carries a trace id" true
              (contains ~sub:"\"trace_id\":" dump);
            Testutil.check_bool "entry is marked slow" true
              (contains ~sub:"\"slow\":true" dump);
            Testutil.check_bool "fast dump frame not recorded" true
              (not (contains ~sub:"\"name\":\"dump\"" dump))))
  in
  ()

(* The scrape plane: raw HTTP/1.0 over a second unix socket served by
   the same select loop. *)
let http_get hsock req =
  let fd = raw_connect hsock in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      raw_send fd req;
      let buf = Buffer.create 1024 in
      let scratch = Bytes.create 4096 in
      let rec go () =
        let k = Unix.read fd scratch 0 (Bytes.length scratch) in
        if k > 0 then begin
          Buffer.add_subbytes buf scratch 0 k;
          go ()
        end
      in
      go ();
      Buffer.contents buf)

let test_e2e_http_scrape () =
  let g = random_graph ~n:60 ~m:150 ~seed:41 in
  let hsock = fresh_sock () in
  let (), _totals =
    with_server
      ~http_listeners:[ Server.Unix_socket hsock ]
      (Server.engine_of_graph g)
      (fun sock ->
        with_client sock (fun c ->
            let (_ : bool array) = Server_client.reach c [| (0, 1) |] in
            ());
        let metrics = http_get hsock "GET /metrics HTTP/1.0\r\n\r\n" in
        Testutil.check_bool "metrics answers 200" true
          (contains ~sub:"HTTP/1.0 200" metrics);
        Testutil.check_bool "metrics is prometheus text" true
          (contains ~sub:"text/plain; version=0.0.4" metrics);
        Testutil.check_bool "lifetime families exported" true
          (contains ~sub:"qpgc_server_frames" metrics);
        Testutil.check_bool "rolling qps gauge exported" true
          (contains ~sub:"qpgc_server_qps_" metrics);
        Testutil.check_bool "rolling p99 gauge exported" true
          (contains ~sub:"qpgc_server_latency_us_p99_" metrics);
        let health = http_get hsock "GET /healthz HTTP/1.0\r\n\r\n" in
        Testutil.check_bool "healthz ok" true
          (contains ~sub:"HTTP/1.0 200" health && contains ~sub:"ok" health);
        let ready = http_get hsock "GET /readyz HTTP/1.0\r\n\r\n" in
        Testutil.check_bool "readyz ready" true
          (contains ~sub:"HTTP/1.0 200" ready && contains ~sub:"ready" ready);
        let missing = http_get hsock "GET /nope HTTP/1.0\r\n\r\n" in
        Testutil.check_bool "unknown path is 404" true
          (contains ~sub:"HTTP/1.0 404" missing);
        let post = http_get hsock "POST /metrics HTTP/1.0\r\n\r\n" in
        Testutil.check_bool "non-GET is 405" true
          (contains ~sub:"HTTP/1.0 405" post))
  in
  try Sys.remove hsock with Sys_error _ -> ()

let test_e2e_shutdown_ack () =
  let g = random_graph ~n:20 ~m:40 ~seed:5 in
  let (), totals =
    with_server (Server.engine_of_graph g) (fun sock ->
        with_client sock (fun c ->
            Testutil.check_bool "shutdown acknowledged" true
              (Server_client.shutdown c = "draining")))
  in
  Testutil.check_int "no queries were needed" 0 totals.Server.queries;
  Testutil.check_bool "the connection was accepted" true (totals.Server.accepted >= 1)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "server"
    [
      ( "codec",
        [
          Alcotest.test_case "variant round-trips" `Quick
            test_roundtrip_variants;
          Alcotest.test_case "u32 encode bounds" `Quick test_u32_bounds;
          Alcotest.test_case "corruption verdicts" `Quick test_corruption_cases;
          Alcotest.test_case "frame_ready" `Quick test_frame_ready;
          Alcotest.test_case "multi-frame stream" `Quick test_stream_decode;
          qcheck_roundtrip_request;
          qcheck_roundtrip_response;
          qcheck_roundtrip_pattern;
          qcheck_truncation;
          qcheck_corruption;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "in-process eval oracle" `Quick
            test_eval_in_process;
          Alcotest.test_case "text snapshot dispatch" `Quick
            test_load_engine_text;
          Alcotest.test_case "reach batches vs BFS oracle" `Quick
            test_e2e_reach;
          Alcotest.test_case "pattern query" `Quick test_e2e_pattern;
          Alcotest.test_case "stats and metrics verbs" `Quick test_e2e_stats;
          Alcotest.test_case "malformed frame recovery" `Quick
            test_e2e_malformed_recovery;
          Alcotest.test_case "oversized frame disconnects" `Quick
            test_e2e_oversized_disconnect;
          Alcotest.test_case "flight recorder captures slow frames" `Quick
            test_e2e_flight_recorder;
          Alcotest.test_case "http scrape endpoints" `Quick
            test_e2e_http_scrape;
          Alcotest.test_case "shutdown verb drains" `Quick
            test_e2e_shutdown_ack;
        ] );
    ]
