(* Storage-backend tests: the 'M' (mmap) and 'V' (varint) snapshot
   formats, the varint codec, and the backend-equivalence properties —
   every query-visible accessor must behave identically on the flat, mmap
   and varint backends, under 1, 2 and 4 domains. *)

let tmp_counter = ref 0

let with_tmp_file f =
  incr tmp_counter;
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "qpgc_storage_%d_%d.bin" (Unix.getpid ()) !tmp_counter)
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* A small fixed graph with named labels, used by the deterministic
   corruption cases. *)
let sample () =
  let table = Graph_io.Label_table.create () in
  let a = Graph_io.Label_table.intern table "author" in
  let p = Graph_io.Label_table.intern table "paper" in
  let g =
    Digraph.make ~n:6
      ~labels:[| a; a; p; p; p; a |]
      [ (0, 2); (0, 3); (1, 2); (2, 4); (3, 4); (4, 5); (5, 0); (5, 5) ]
  in
  (g, table)

let expect_parse_error what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Parse_error" what
  | exception Graph_io.Parse_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Varint codec *)

let codec_roundtrip () =
  let cases =
    [ 0; 1; 17; 127; 128; 255; 16383; 16384; 0xfffff; 0x7fffffff;
      max_int ]
  in
  List.iter
    (fun x ->
      let buf = Buffer.create 16 in
      Varint.add buf x;
      let s = Buffer.contents buf in
      Testutil.check_int "byte_length" (String.length s) (Varint.byte_length x);
      let y, p = Varint.read s 0 in
      Testutil.check_int "value" x y;
      Testutil.check_int "end pos" (String.length s) p;
      let pos = ref 0 in
      Testutil.check_int "trusted value" x (Varint.read_trusted s pos);
      Testutil.check_int "trusted end" (String.length s) !pos)
    cases

let codec_errors () =
  let expect_error what s pos =
    match Varint.read s pos with
    | _ -> Alcotest.failf "%s: expected Varint.Error" what
    | exception Varint.Error _ -> ()
  in
  expect_error "empty" "" 0;
  expect_error "past end" "\x05" 1;
  expect_error "negative pos" "\x05" (-1);
  expect_error "truncated continuation" "\x80" 0;
  expect_error "overlong zero" "\x80\x00" 0;
  expect_error "overlong value" "\x85\x00" 0;
  (* 10 continuation bytes cannot fit a 63-bit int. *)
  expect_error "overflow" "\xff\xff\xff\xff\xff\xff\xff\xff\xff\x7f" 0;
  (* Canonical single zero is fine. *)
  let y, p = Varint.read "\x00" 0 in
  Testutil.check_int "zero value" 0 y;
  Testutil.check_int "zero pos" 1 p

(* ------------------------------------------------------------------ *)
(* Format round-trips *)

let format_of_backend = function
  | Digraph.Flat -> "flat"
  | Digraph.Mapped -> "mmap"
  | Digraph.Varint -> "varint"

let roundtrip_prop fmt g =
  let s = Graph_io.to_snapshot_string ~format:fmt g in
  let g', _ = Graph_io.of_binary_string s in
  Digraph.validate g';
  if not (Digraph.equal g g') then
    QCheck2.Test.fail_reportf "%s roundtrip changed the graph"
      (format_of_backend fmt);
  (* Canonicality: re-serialising the loaded graph — whatever backend it
     landed on — reproduces the bytes. *)
  let s2 = Graph_io.to_snapshot_string ~format:fmt g' in
  if not (String.equal s s2) then
    QCheck2.Test.fail_reportf "%s serialisation not canonical"
      (format_of_backend fmt);
  true

let truncation_prop fmt g =
  let s = Graph_io.to_snapshot_string ~format:fmt g in
  for len = 0 to String.length s - 1 do
    match Graph_io.of_binary_string (String.sub s 0 len) with
    | _ ->
        QCheck2.Test.fail_reportf "%s: truncation to %d bytes accepted"
          (format_of_backend fmt) len
    | exception Graph_io.Parse_error _ -> ()
  done;
  true

let mmap_load_prop g =
  with_tmp_file (fun path ->
      let table = Graph_io.Label_table.create () in
      ignore (Graph_io.Label_table.intern table "alpha");
      Graph_io.save_binary ~labels:table ~format:Digraph.Mapped path g;
      (* Eager load: flat backend. *)
      let ge, te = Graph_io.load path in
      if Digraph.backend ge <> Digraph.Flat then
        QCheck2.Test.fail_report "eager 'M' load should land on flat";
      (* Zero-copy load: mapped backend, same graph. *)
      let gm, tm = Graph_io.load ~mmap:true path in
      if Digraph.backend gm <> Digraph.Mapped then
        QCheck2.Test.fail_report "mmap load should land on mapped backend";
      Digraph.validate gm;
      if not (Digraph.equal g ge && Digraph.equal g gm) then
        QCheck2.Test.fail_report "mmap roundtrip changed the graph";
      if
        Graph_io.Label_table.count te <> 1
        || Graph_io.Label_table.count tm <> 1
        || Graph_io.Label_table.name tm 0 <> "alpha"
      then QCheck2.Test.fail_report "label table lost by mmap roundtrip";
      true)

let varint_backend_load_prop g =
  let s = Graph_io.to_snapshot_string ~format:Digraph.Varint g in
  let g', _ = Graph_io.of_binary_string s in
  if Digraph.backend g' <> Digraph.Varint then
    QCheck2.Test.fail_report "'V' load should land on varint backend";
  (* The dense escape hatch must agree with the flat original. *)
  let off, adj = Digraph.out_csr g and off', adj' = Digraph.out_csr g' in
  if off <> off' || adj <> adj' then
    QCheck2.Test.fail_report "varint dense view disagrees";
  let ioff, iadj = Digraph.in_csr g and ioff', iadj' = Digraph.in_csr g' in
  if ioff <> ioff' || iadj <> iadj' then
    QCheck2.Test.fail_report "varint dense in-view disagrees";
  true

(* ------------------------------------------------------------------ *)
(* Deterministic corruption cases *)

let set_byte s i c =
  let b = Bytes.of_string s in
  Bytes.set b i c;
  Bytes.to_string b

let mapped_corruption () =
  let g, table = sample () in
  let s = Graph_io.to_snapshot_string ~labels:table ~format:Digraph.Mapped g in
  expect_parse_error "kind" (fun () ->
      Graph_io.of_binary_string (set_byte s 4 'Z'));
  expect_parse_error "version" (fun () ->
      Graph_io.of_binary_string (set_byte s 5 '\009'));
  expect_parse_error "node count" (fun () ->
      Graph_io.of_binary_string (set_byte s 8 '\007'));
  expect_parse_error "edge count" (fun () ->
      Graph_io.of_binary_string (set_byte s 16 '\200'));
  expect_parse_error "label count" (fun () ->
      Graph_io.of_binary_string (set_byte s 24 '\000'));
  expect_parse_error "blob length" (fun () ->
      Graph_io.of_binary_string (set_byte s 40 '\001'));
  (* First out-offset entry made nonzero. *)
  expect_parse_error "offsets" (fun () ->
      Graph_io.of_binary_string (set_byte s 48 '\002'));
  (* An adjacency entry pushed out of sorted order. *)
  let adj0 = 48 + (8 * 7) in
  expect_parse_error "adjacency" (fun () ->
      Graph_io.of_binary_string (set_byte s adj0 '\005'));
  (* An in-mirror entry that no longer matches the out-CSR. *)
  let iadj0 = 48 + (8 * 7) + (8 * 8) + (8 * 7) in
  expect_parse_error "in-mirror" (fun () ->
      Graph_io.of_binary_string (set_byte s iadj0 '\004'));
  (* The same corruptions must also be rejected on the mmap path (O(1)
     header checks catch the structural ones; deep validation the rest). *)
  with_tmp_file (fun path ->
      write_file path (set_byte s 40 '\001');
      expect_parse_error "mmap blob length" (fun () ->
          Graph_io.load ~mmap:true path));
  with_tmp_file (fun path ->
      write_file path (set_byte s 48 '\002');
      expect_parse_error "mmap offsets" (fun () ->
          Graph_io.load ~mmap:true path));
  with_tmp_file (fun path ->
      write_file path (set_byte s adj0 '\005');
      let gm, _ = Graph_io.load ~mmap:true path in
      match Digraph.validate gm with
      | () -> Alcotest.fail "mmap deep validation accepted corrupt adjacency"
      | exception Failure _ -> ())

let varint_corruption () =
  let g, table = sample () in
  let s = Graph_io.to_snapshot_string ~labels:table ~format:Digraph.Varint g in
  expect_parse_error "kind" (fun () ->
      Graph_io.of_binary_string (set_byte s 4 'Z'));
  expect_parse_error "version" (fun () ->
      Graph_io.of_binary_string (set_byte s 5 '\009'));
  expect_parse_error "edge count" (fun () ->
      Graph_io.of_binary_string (set_byte s 16 '\042'));
  expect_parse_error "stream length" (fun () ->
      Graph_io.of_binary_string (set_byte s 32 '\001'));
  (* First out-index entry made nonzero. *)
  expect_parse_error "index" (fun () ->
      Graph_io.of_binary_string (set_byte s 48 '\001'));
  (* First stream byte is node 0's degree (2): degree mismatch breaks the
     block framing. *)
  let data0 = 48 + (4 * 7) in
  expect_parse_error "degree" (fun () ->
      Graph_io.of_binary_string (set_byte s data0 '\005'));
  (* A continuation flag on the last byte of a block truncates it. *)
  expect_parse_error "overlong" (fun () ->
      Graph_io.of_binary_string (set_byte s (data0 + 1) '\128'))

(* ------------------------------------------------------------------ *)
(* Backend equivalence *)

let backends_of g =
  let gm =
    with_tmp_file (fun path ->
        Graph_io.save_binary ~format:Digraph.Mapped path g;
        fst (Graph_io.load ~mmap:true path))
  in
  (* Keep the temp file unlinked-after-load: the mapping stays valid on
     POSIX even after the unlink above. *)
  [ ("flat", Digraph.to_flat g); ("mmap", gm); ("varint", Digraph.to_varint g) ]

let slices_equal (base_a, start_a, len_a) (base_b, start_b, len_b) =
  len_a = len_b
  && (let rec go i =
        i >= len_a || (base_a.(start_a + i) = base_b.(start_b + i) && go (i + 1))
      in
      go 0)

let accessor_equiv_prop g =
  let n = Digraph.n g in
  let reference = Digraph.to_flat g in
  List.iter
    (fun (name, gb) ->
      if Digraph.backend_name gb <> name then
        QCheck2.Test.fail_reportf "expected %s backend, got %s" name
          (Digraph.backend_name gb);
      Digraph.validate gb;
      if Digraph.label_count gb <> Digraph.label_count reference then
        QCheck2.Test.fail_reportf "%s: label_count differs" name;
      for v = 0 to n - 1 do
        if Digraph.label gb v <> Digraph.label reference v then
          QCheck2.Test.fail_reportf "%s: label %d differs" name v;
        if Digraph.out_degree gb v <> Digraph.out_degree reference v then
          QCheck2.Test.fail_reportf "%s: out_degree %d differs" name v;
        if Digraph.in_degree gb v <> Digraph.in_degree reference v then
          QCheck2.Test.fail_reportf "%s: in_degree %d differs" name v;
        (* succ_slice on the backend is decoded into scratch; the
           reference slice lives in the flat array, so comparing the two
           views directly is safe. *)
        if not (slices_equal (Digraph.succ_slice gb v) (Digraph.succ_slice reference v))
        then QCheck2.Test.fail_reportf "%s: succ_slice %d differs" name v;
        if not (slices_equal (Digraph.pred_slice gb v) (Digraph.pred_slice reference v))
        then QCheck2.Test.fail_reportf "%s: pred_slice %d differs" name v;
        let via_iter = ref [] in
        Digraph.iter_succ gb v (fun w -> via_iter := w :: !via_iter);
        let expected =
          List.rev (Digraph.fold_succ reference v (fun acc w -> w :: acc) [])
        in
        if List.rev !via_iter <> expected then
          QCheck2.Test.fail_reportf "%s: iter_succ %d differs" name v;
        for w = 0 to n - 1 do
          if Digraph.mem_edge gb v w <> Digraph.mem_edge reference v w then
            QCheck2.Test.fail_reportf "%s: mem_edge (%d,%d) differs" name v w
        done
      done;
      (* Reverse shares the sides: spot-check it too. *)
      let rb = Digraph.reverse gb and rr = Digraph.reverse reference in
      for v = 0 to n - 1 do
        if Digraph.out_degree rb v <> Digraph.out_degree rr v then
          QCheck2.Test.fail_reportf "%s: reverse out_degree %d differs" name v
      done)
    (backends_of g);
  true

let bfs_equiv_prop g =
  let n = Digraph.n g in
  let reference = Digraph.to_flat g in
  List.iter
    (fun (name, gb) ->
      for s = 0 to n - 1 do
        for t = 0 to n - 1 do
          if Traversal.bfs_reaches gb s t <> Traversal.bfs_reaches reference s t
          then QCheck2.Test.fail_reportf "%s: BFS (%d,%d) differs" name s t;
          if
            Traversal.bibfs_reaches gb s t
            <> Traversal.bibfs_reaches reference s t
          then QCheck2.Test.fail_reportf "%s: biBFS (%d,%d) differs" name s t
        done
      done)
    (backends_of g);
  true

(* compressR must produce bit-identical results (same hypernode ids, same
   compressed graph) on every backend, under 1, 2 and 4 domains. *)
let compress_equiv_prop (g, domains) =
  let node_map c = Array.init (Digraph.n g) (Compressed.hypernode c) in
  let reference = Compress_reach.compress (Digraph.to_flat g) in
  Pool.with_pool ~domains (fun pool ->
      List.iter
        (fun (name, gb) ->
          let c = Compress_reach.compress ~pool gb in
          if not (Digraph.equal (Compressed.graph c) (Compressed.graph reference))
          then
            QCheck2.Test.fail_reportf "%s/%d domains: compressed graph differs"
              name domains;
          if node_map c <> node_map reference then
            QCheck2.Test.fail_reportf "%s/%d domains: node map differs" name
              domains)
        (backends_of g));
  true

(* Parallel slice decoding: concurrent succ_slice calls from several
   domains must each see their own scratch buffer. *)
let parallel_scratch_prop (g, domains) =
  let n = Digraph.n g in
  if n = 0 then true
  else begin
    let gv = Digraph.to_varint g in
    let reference = Digraph.to_flat g in
    let expected =
      Array.init n (fun v ->
          let base, start, len = Digraph.succ_slice reference v in
          Array.sub base start len)
    in
    let rounds = 64 in
    let bad = Atomic.make (-1) in
    Pool.with_pool ~domains (fun pool ->
        Pool.parallel_for pool ~n:(rounds * n) (fun i ->
            let v = i mod n in
            let base, start, len = Digraph.succ_slice gv v in
            let ok =
              len = Array.length expected.(v)
              && (let rec go j =
                    j >= len
                    || (base.(start + j) = expected.(v).(j) && go (j + 1))
                  in
                  go 0)
            in
            if not ok then Atomic.set bad v));
    if Atomic.get bad >= 0 then
      QCheck2.Test.fail_reportf "concurrent succ_slice corrupted node %d"
        (Atomic.get bad);
    true
  end

(* ------------------------------------------------------------------ *)

let arb_graph = Testutil.arbitrary_digraph ()
let arb_bigger = Testutil.arbitrary_digraph ~max_n:40 ~max_labels:5 ()

let arb_graph_domains =
  let gen =
    let open QCheck2.Gen in
    let* g = Testutil.digraph_gen ~max_n:24 () in
    let* domains = QCheck2.Gen.oneofl [ 1; 2; 4 ] in
    pure (g, domains)
  in
  (gen, fun (g, d) -> Printf.sprintf "%s domains=%d" (Testutil.digraph_print g) d)

let format_props =
  [
    Testutil.qtest ~count:100 "mmap snapshot roundtrip is exact and canonical"
      arb_bigger
      (roundtrip_prop Digraph.Mapped);
    Testutil.qtest ~count:100 "varint snapshot roundtrip is exact and canonical"
      arb_bigger
      (roundtrip_prop Digraph.Varint);
    Testutil.qtest ~count:100 "flat snapshot roundtrip is exact and canonical"
      arb_bigger
      (roundtrip_prop Digraph.Flat);
    Testutil.qtest ~count:25 "every mmap snapshot prefix is rejected" arb_graph
      (truncation_prop Digraph.Mapped);
    Testutil.qtest ~count:25 "every varint snapshot prefix is rejected"
      arb_graph
      (truncation_prop Digraph.Varint);
    Testutil.qtest ~count:60 "mmap file load (eager and zero-copy)" arb_bigger
      mmap_load_prop;
    Testutil.qtest ~count:100 "varint load lands on varint backend" arb_bigger
      varint_backend_load_prop;
  ]

let equivalence_props =
  [
    Testutil.qtest ~count:120 "accessors agree across backends" arb_bigger
      accessor_equiv_prop;
    Testutil.qtest ~count:40 "BFS and biBFS agree across backends" arb_graph
      bfs_equiv_prop;
    Testutil.qtest ~count:40 "compressR bit-identical across backends and domains"
      arb_graph_domains compress_equiv_prop;
    Testutil.qtest ~count:20 "parallel slice decode is domain-safe"
      arb_graph_domains parallel_scratch_prop;
  ]

let () =
  Alcotest.run "storage"
    [
      ( "codec",
        [
          Alcotest.test_case "varint roundtrip" `Quick codec_roundtrip;
          Alcotest.test_case "varint errors" `Quick codec_errors;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "mapped snapshot" `Quick mapped_corruption;
          Alcotest.test_case "varint snapshot" `Quick varint_corruption;
        ] );
      ("format_props", format_props);
      ("equivalence", equivalence_props);
    ]
