(* Subgraph isomorphism: matcher correctness against a brute-force oracle,
   and the two non-preservation directions under bisimulation compression
   that justify the paper's restriction to (bounded) simulation. *)

let qtest = Testutil.qtest

(* brute force: try all injective assignments *)
let brute_force ~pattern g =
  let np = Digraph.n pattern and n = Digraph.n g in
  if np > n then []
  else begin
    let results = ref [] in
    let assignment = Array.make np (-1) in
    let used = Array.make (max 1 n) false in
    let valid () =
      let ok = ref true in
      for u = 0 to np - 1 do
        if Digraph.label pattern u <> Digraph.label g assignment.(u) then
          ok := false
      done;
      Digraph.iter_edges pattern (fun u v ->
          if not (Digraph.mem_edge g assignment.(u) assignment.(v)) then
            ok := false);
      !ok
    in
    let rec go u =
      if u = np then begin
        if valid () then results := Array.copy assignment :: !results
      end
      else
        for v = 0 to n - 1 do
          if not used.(v) then begin
            assignment.(u) <- v;
            used.(v) <- true;
            go (u + 1);
            assignment.(u) <- -1;
            used.(v) <- false
          end
        done
    in
    go 0;
    List.sort compare !results
  end

let unit_triangle () =
  let tri = Digraph.make ~n:3 [ (0, 1); (1, 2); (2, 0) ] in
  let g = Digraph.make ~n:4 [ (0, 1); (1, 2); (2, 0); (2, 3) ] in
  Alcotest.(check bool) "triangle embeds" true (Subgraph_iso.embeds ~pattern:tri g);
  Alcotest.(check int) "3 rotations" 3 (Subgraph_iso.count ~pattern:tri g);
  let dag = Digraph.make ~n:3 [ (0, 1); (1, 2) ] in
  Alcotest.(check bool) "no triangle in a path" false
    (Subgraph_iso.embeds ~pattern:tri dag)

let unit_labels () =
  let pattern = Digraph.make ~n:2 ~labels:[| 0; 1 |] [ (0, 1) ] in
  let g = Digraph.make ~n:2 ~labels:[| 0; 0 |] [ (0, 1) ] in
  Alcotest.(check bool) "label mismatch" false (Subgraph_iso.embeds ~pattern g);
  let g2 = Digraph.make ~n:2 ~labels:[| 0; 1 |] [ (0, 1) ] in
  Alcotest.(check (option (array int))) "found mapping" (Some [| 0; 1 |])
    (Subgraph_iso.find ~pattern g2)

let unit_injectivity () =
  (* two distinct children required; a single shared child must not do *)
  let pattern = Digraph.make ~n:3 ~labels:[| 0; 1; 1 |] [ (0, 1); (0, 2) ] in
  let g_two = Digraph.make ~n:3 ~labels:[| 0; 1; 1 |] [ (0, 1); (0, 2) ] in
  Alcotest.(check bool) "two children ok" true (Subgraph_iso.embeds ~pattern g_two);
  let g_one = Digraph.make ~n:2 ~labels:[| 0; 1 |] [ (0, 1) ] in
  Alcotest.(check bool) "one child insufficient" false
    (Subgraph_iso.embeds ~pattern g_one)

let unit_empty_pattern () =
  let g = Digraph.make ~n:2 [] in
  Alcotest.(check bool) "empty pattern embeds" true
    (Subgraph_iso.embeds ~pattern:(Digraph.make ~n:0 []) g)

let arb_pg =
  ( (let open QCheck2.Gen in
     let* pattern = Testutil.digraph_gen ~max_n:4 ~max_labels:2 () in
     let* g = Testutil.digraph_gen ~max_n:6 ~max_labels:2 () in
     pure (pattern, g)),
    fun (pattern, g) ->
      Format.asprintf "pattern:%a@.graph:%a" Digraph.pp pattern Digraph.pp g )

let iso_props =
  [
    qtest ~count:300 "matcher equals brute force" arb_pg (fun (pattern, g) ->
        Subgraph_iso.find_all ~pattern g = brute_force ~pattern g);
    qtest "found embeddings are valid" arb_pg (fun (pattern, g) ->
        List.for_all
          (fun m ->
            Array.length m = Digraph.n pattern
            && List.length (List.sort_uniq compare (Array.to_list m))
               = Array.length m
            && List.for_all
                 (fun (u, v) -> Digraph.mem_edge g m.(u) m.(v))
                 (Testutil.edges_list pattern))
          (Subgraph_iso.find_all ~pattern g));
  ]

(* --- non-preservation under bisimulation compression --- *)

let under_reporting () =
  (* a -> b1, a -> b2 with b1 ~ b2: G embeds "two distinct children", the
     compressed graph does not *)
  let g = Digraph.make ~n:3 ~labels:[| 0; 1; 1 |] [ (0, 1); (0, 2) ] in
  let c = Compress_bisim.compress g in
  let pattern = Digraph.make ~n:3 ~labels:[| 0; 1; 1 |] [ (0, 1); (0, 2) ] in
  Alcotest.(check bool) "embeds in G" true (Subgraph_iso.embeds ~pattern g);
  Alcotest.(check bool) "b1 ~ b2 merged" true
    (Compressed.hypernode c 1 = Compressed.hypernode c 2);
  Alcotest.(check bool) "does NOT embed in Gr" false
    (Subgraph_iso.embeds ~pattern (Compressed.graph c))

let over_reporting () =
  (* an edge between bisimilar nodes becomes a hypernode self-loop: two
     same-label nodes on a 2-cycle are bisimilar, so the quotient is a
     single node with a self-loop, which a self-loop pattern matches even
     though G has no self-loop *)
  let g = Digraph.make ~n:2 ~labels:[| 5; 5 |] [ (0, 1); (1, 0) ] in
  let c = Compress_bisim.compress g in
  Alcotest.(check int) "folded to one hypernode" 1
    (Digraph.n (Compressed.graph c));
  let selfloop = Digraph.make ~n:1 ~labels:[| 5 |] [ (0, 0) ] in
  Alcotest.(check bool) "self-loop embeds in Gr" true
    (Subgraph_iso.embeds ~pattern:selfloop (Compressed.graph c));
  Alcotest.(check bool) "but not in G" false
    (Subgraph_iso.embeds ~pattern:selfloop g)

let simulation_is_preserved_on_same_cases () =
  (* the contrast: on the same under-reporting graph, (bounded) simulation
     IS preserved, as Theorem 4 promises *)
  let g = Digraph.make ~n:3 ~labels:[| 0; 1; 1 |] [ (0, 1); (0, 2) ] in
  let c = Compress_bisim.compress g in
  let p =
    Pattern.make ~n:2 ~labels:[| 0; 1 |] ~edges:[ (0, 1, Pattern.Bounded 1) ]
  in
  Alcotest.(check bool) "simulation preserved" true
    (Verify.pattern_preserved p g c)

let () =
  Alcotest.run "subgraph_iso"
    [
      ( "matcher",
        [
          Alcotest.test_case "triangle" `Quick unit_triangle;
          Alcotest.test_case "labels" `Quick unit_labels;
          Alcotest.test_case "injectivity" `Quick unit_injectivity;
          Alcotest.test_case "empty pattern" `Quick unit_empty_pattern;
        ]
        @ iso_props );
      ( "non-preservation",
        [
          Alcotest.test_case "under-reporting on Gr" `Quick under_reporting;
          Alcotest.test_case "over-reporting on Gr" `Quick over_reporting;
          Alcotest.test_case "simulation preserved on the same case" `Quick
            simulation_is_preserved_on_same_cases;
        ] );
    ]
