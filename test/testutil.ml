(* Shared fixtures and qcheck generators for the test suite.

   The fixtures encode the paper's worked examples in executable form.  The
   published figures are not fully recoverable from the text, so each
   fixture is built to satisfy exactly the properties the prose asserts
   (which are the properties the tests check). *)

(* Labels used by the recommendation-network fixture (Fig 2). *)
let l_c = 0 (* customer *)
let l_bsa = 1 (* book server agent *)
let l_msa = 2 (* music shop agent *)
let l_fa = 3 (* facilitator agent *)

(* Node ids of the recommendation network. *)
module Rec = struct
  let bsa1 = 0
  let bsa2 = 1
  let msa1 = 2
  let msa2 = 3
  let fa1 = 4
  let fa2 = 5
  let c1 = 6
  let c2 = 7
  let fa3 = 8
  let fa4 = 9
  let c3 = 10
  let c4 = 11
  let c5 = 12
  let c6 = 13
end

(* The recommendation network G of Fig 2 (Example 1), as constrained by the
   paper's prose:
   - BSA1 and BSA2 are reachability equivalent (Example 2), as are
     MSA1/MSA2; both BSAs recommend the MSAs and FAs;
   - customers C1/C2 interact with FA1/FA2 (2-cycles), within 2 hops of the
     BSAs, so the pattern query of Example 1 matches
     {BSA1,BSA2} / {FA1,FA2} / {C1,C2};
   - FA3 and FA4 are bisimilar but not reachability equivalent: FA3 reaches
     C3, FA4 does not (Example 2 / Example 4);
   - FA2 and FA3 are not bisimilar: FA2 has a C child that interacts back,
     FA3 does not (Example 4);
   - the customers C3..C5 are pairwise reachability equivalent. *)
let recommendation () =
  let open Rec in
  let labels = Array.make 14 l_c in
  labels.(bsa1) <- l_bsa;
  labels.(bsa2) <- l_bsa;
  labels.(msa1) <- l_msa;
  labels.(msa2) <- l_msa;
  labels.(fa1) <- l_fa;
  labels.(fa2) <- l_fa;
  labels.(fa3) <- l_fa;
  labels.(fa4) <- l_fa;
  Digraph.make ~n:14 ~labels
    [
      (bsa1, msa1); (bsa1, msa2); (bsa1, fa1); (bsa1, fa2);
      (bsa2, msa1); (bsa2, msa2); (bsa2, fa1); (bsa2, fa2);
      (fa1, c1); (c1, fa1);
      (fa2, c2); (c2, fa2);
      (fa3, c3); (fa3, c4); (fa3, c5);
      (fa4, c6);
    ]

(* The pattern Qp of Example 1: find BSAs that reach a customer within 2
   hops, where the customer interacts with an FA (edges C->FA and FA->C,
   bound 1 each). *)
let recommendation_pattern () =
  Pattern.make ~n:3
    ~labels:[| l_bsa; l_c; l_fa |]
    ~edges:
      [
        (0, 1, Pattern.Bounded 2);
        (1, 2, Pattern.Bounded 1);
        (2, 1, Pattern.Bounded 1);
      ]

(* G2 of Fig 4: the bisimulation-index counter-example for reachability.
   C1 -> E1 and C2 -> E2; C1 and C2 are bisimilar (so a bisimulation-based
   index merges them) yet C2 reaches E2 while C1 does not. *)
module Fig4 = struct
  let c1 = 0
  let c2 = 1
  let e1 = 2
  let e2 = 3

  let g2 () =
    Digraph.make ~n:4 ~labels:[| 0; 0; 1; 1 |] [ (c1, e1); (c2, e2) ]
end

(* G1 of Fig 6: A(1)-index counter-example.  A1 -> B1{C,D}; A2 -> B2{C},
   B3{D}; A3 -> B4{C}, B5{C,D}.  All A's have only B children (1-bisimilar)
   but are pairwise non-bisimilar; the pattern {(B,C),(B,D)} matches only
   B1 and B5. *)
module Fig6 = struct
  let l_a = 0
  let l_b = 1
  let l_cc = 2
  let l_d = 3
  let a1 = 0
  let a2 = 1
  let a3 = 2
  let b1 = 3
  let b2 = 4
  let b3 = 5
  let b4 = 6
  let b5 = 7
  let c1 = 8
  let c2 = 9
  let c3 = 10
  let c4 = 11
  let d1 = 12
  let d2 = 13
  let d3 = 14

  let g1 () =
    let labels =
      [| l_a; l_a; l_a; l_b; l_b; l_b; l_b; l_b; l_cc; l_cc; l_cc; l_cc; l_d; l_d; l_d |]
    in
    Digraph.make ~n:15 ~labels
      [
        (a1, b1); (a2, b2); (a2, b3); (a3, b4); (a3, b5);
        (b1, c1); (b1, d1);
        (b2, c2);
        (b3, d2);
        (b4, c3);
        (b5, c4); (b5, d3);
      ]

  (* G2 of Fig 6: A4 ~Re A5 but not bisimilar; A5 ~ A6 bisimilar but not
     reachability equivalent. *)
  let a4 = 0
  let a5 = 1
  let a6 = 2
  let b6 = 3
  let b7 = 4
  let c5 = 5
  let c6 = 6

  let g2 () =
    let labels = [| l_a; l_a; l_a; l_b; l_b; l_cc; l_cc |] in
    Digraph.make ~n:7 ~labels
      [ (a4, b6); (a4, c5); (a5, b6); (a6, b7); (b6, c5); (b7, c6) ]
end

(* ------------------------------------------------------------------ *)
(* qcheck generators *)

let digraph_gen ?(max_n = 14) ?(max_labels = 3) () =
  let open QCheck2.Gen in
  let* n = int_range 1 max_n in
  let* label_count = int_range 1 max_labels in
  let* labels = array_size (pure n) (int_range 0 (label_count - 1)) in
  let* m = int_range 0 (3 * n) in
  let* edges =
    list_size (pure m) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
  in
  pure (Digraph.make ~n ~labels edges)

let digraph_print g = Format.asprintf "%a" Digraph.pp g

(* An "arbitrary" is a generator paired with a printer, consumed by
   {!qtest}. *)
type 'a arb = 'a QCheck2.Gen.t * ('a -> string)

let arbitrary_digraph ?max_n ?max_labels () =
  (digraph_gen ?max_n ?max_labels (), digraph_print)

(* A graph together with a batch of random updates. *)
let graph_updates_gen ?(max_n = 14) ?(max_updates = 10) () =
  let open QCheck2.Gen in
  let* g = digraph_gen ~max_n () in
  let n = Digraph.n g in
  let* k = int_range 0 max_updates in
  let upd =
    let* u = int_range 0 (n - 1) in
    let* v = int_range 0 (n - 1) in
    let* ins = bool in
    pure (if ins then Edge_update.Insert (u, v) else Edge_update.Delete (u, v))
  in
  let* updates = list_size (pure k) upd in
  pure (g, updates)

let graph_updates_print (g, updates) =
  Format.asprintf "%a@.updates: %a" Digraph.pp g
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Edge_update.pp)
    updates

let arbitrary_graph_updates ?max_n ?max_updates () =
  (graph_updates_gen ?max_n ?max_updates (), graph_updates_print)

(* A graph and a compatible random pattern. *)
let graph_pattern_gen ?(max_n = 12) () =
  let open QCheck2.Gen in
  let* g = digraph_gen ~max_n () in
  let* seed = int_range 0 10000 in
  let rng = Random.State.make [| seed |] in
  let* nodes = int_range 1 4 in
  let* edges = int_range 0 5 in
  let* max_bound = int_range 1 3 in
  let* unbounded = float_range 0.0 0.5 in
  let p =
    Pattern_gen.random rng g ~nodes ~edges ~max_bound ~unbounded_prob:unbounded
  in
  pure (g, p)

let graph_pattern_print (g, p) =
  Format.asprintf "%a@.%a" Digraph.pp g Pattern.pp p

let arbitrary_graph_pattern ?max_n () =
  (graph_pattern_gen ?max_n (), graph_pattern_print)

(* Edge list in lexicographic order, via the allocation-free iterator (the
   core API no longer materialises boxed edge lists). *)
let edges_list g =
  List.rev (Digraph.fold_edges g (fun acc u v -> (u, v) :: acc) [])

(* Register a qcheck property as an alcotest case. *)
let qtest ?(count = 200) name (gen, print) prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name ~print gen prop)

let check_bool name expected actual = Alcotest.(check bool) name expected actual
let check_int name expected actual = Alcotest.(check int) name expected actual
