(* Compilation-unit loading for the typed lint tier.

   A "unit" is one implementation's Typedtree, obtained either from a
   `.cmt` file that dune already produced (the normal whole-program
   path: dune passes -bin-annot unconditionally) or by typechecking a
   standalone `.ml` in-process against the stdlib (the fixture/test
   path: fixtures are self-contained, so no search path is needed). *)

type unit_info = {
  modname : string;  (** compilation unit name, e.g. ["Digraph"] *)
  display : string;  (** path shown in diagnostics *)
  source_path : string option;
      (** readable source file, for suppression comments and the
          syntactic tier; [None] when the source is not on disk *)
  str : Typedtree.structure;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> In_channel.input_all ic)

(* Resolve the source file recorded in a cmt to something readable from
   the current directory: dune stores paths relative to the build
   context root, and the typed alias runs from there. *)
let find_source infos =
  match infos.Cmt_format.cmt_sourcefile with
  | None -> None
  | Some src ->
      if Sys.file_exists src then Some src
      else
        let in_build = Filename.concat infos.Cmt_format.cmt_builddir src in
        if Sys.file_exists in_build then Some in_build else None

let load_cmt ~prefix path =
  match Cmt_format.read_cmt path with
  | exception Sys_error msg -> Error msg
  | exception _ -> Error (path ^ ": unreadable cmt file")
  | infos -> (
      match infos.Cmt_format.cmt_annots with
      | Cmt_format.Implementation str ->
          let display =
            prefix
            ^ Option.value infos.Cmt_format.cmt_sourcefile
                ~default:(Filename.remove_extension path ^ ".ml")
          in
          Ok
            {
              modname = infos.Cmt_format.cmt_modname;
              display;
              source_path = find_source infos;
              str;
            }
      | _ -> Error (path ^ ": cmt does not carry an implementation"))

let typecheck_initialized = ref false

let init_typecheck () =
  if not !typecheck_initialized then begin
    typecheck_initialized := true;
    (* Fixtures deliberately contain lint violations, which often trip
       compiler warnings too (unused values and the like); those are not
       what the tests assert, so silence them. *)
    ignore (Warnings.parse_options false "-a");
    Clflags.dont_write_files := true;
    Compmisc.init_path ()
  end

let modname_of_source path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let typecheck_ml ~prefix path =
  init_typecheck ();
  match read_file path with
  | exception Sys_error msg -> Error msg
  | src -> (
      let display = prefix ^ path in
      let lexbuf = Lexing.from_string src in
      Location.init lexbuf display;
      Location.input_name := display;
      match
        let parsed = Parse.implementation lexbuf in
        let env = Compmisc.initial_env () in
        let str, _, _, _, _ = Typemod.type_structure env parsed in
        str
      with
      | str ->
          Ok
            {
              modname = modname_of_source path;
              display;
              source_path = Some path;
              str;
            }
      | exception exn -> (
          match Location.error_of_exn exn with
          | Some (`Ok report) ->
              Error (Format.asprintf "%a" Location.print_report report)
          | _ -> Error (display ^ ": typechecking failed")))

(* Collect every .cmt under [dir], sorted for deterministic unit order.
   Unlike source collection this must descend into dot-directories:
   dune keeps cmts in [.<lib>.objs/byte] and [.<exe>.eobjs/byte]. *)
let collect_cmts dir =
  let acc = ref [] in
  let rec go d =
    match Sys.readdir d with
    | exception Sys_error _ -> ()
    | entries ->
        Array.sort compare entries;
        Array.iter
          (fun name ->
            let p = Filename.concat d name in
            if Sys.is_directory p then go p
            else if Filename.check_suffix name ".cmt" then acc := p :: !acc)
          entries
  in
  go dir;
  List.sort compare !acc
