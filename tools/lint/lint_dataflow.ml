(* A small dataflow toolkit for the typed (whole-program) lint tier.

   The typed rules all reduce to the same two ingredients:

   - interprocedural summaries: a per-definition fact ("mutates parameter
     2", "allocates", "raises Parse_error", "is a bounds checker")
     computed to a fixpoint over the call graph, and

   - a forward walk: threading an abstract state through a definition's
     body in approximate evaluation order, joining at branches.

   This module provides the first as a generic monotone worklist solver;
   the forward walks live with their rules (each has its own state and
   join) but share the traversal helpers in [Lint_program]. *)

(* [fixpoint ~keys ~deps ~init ~transfer ~equal] computes the least
   fixpoint of [transfer] over the nodes [keys], where [deps k] lists the
   nodes whose values [transfer k] may read (for a call-graph analysis:
   the callees of [k]).  [transfer] must be monotone in its [get]
   argument for termination; [equal] decides whether a recomputed value
   changed.  Unknown keys passed to [get] answer with [init]. *)
let fixpoint ~keys ~deps ~init ~transfer ~equal =
  let value : (string, 'a) Hashtbl.t = Hashtbl.create 256 in
  List.iter (fun k -> Hashtbl.replace value k (init k)) keys;
  (* Reverse dependencies: when [d] changes, every [k] with [d] in
     [deps k] must be reconsidered. *)
  let rdeps : (string, string list) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun k ->
      List.iter
        (fun d ->
          let cur = Option.value (Hashtbl.find_opt rdeps d) ~default:[] in
          Hashtbl.replace rdeps d (k :: cur))
        (deps k))
    keys;
  let queued : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let queue = Queue.create () in
  let enqueue k =
    if not (Hashtbl.mem queued k) then begin
      Hashtbl.replace queued k ();
      Queue.add k queue
    end
  in
  List.iter enqueue keys;
  let get k =
    match Hashtbl.find_opt value k with Some v -> v | None -> init k
  in
  while not (Queue.is_empty queue) do
    let k = Queue.pop queue in
    Hashtbl.remove queued k;
    let v' = transfer k ~get in
    if not (equal (get k) v') then begin
      Hashtbl.replace value k v';
      List.iter enqueue (Option.value (Hashtbl.find_opt rdeps k) ~default:[])
    end
  done;
  value
