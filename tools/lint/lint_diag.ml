(* Diagnostics emitted by lint rules: location + rule id + message, with
   stable ordering and both human and machine renderings. *)

type t = {
  file : string;  (* display path, e.g. "lib/graph/digraph.ml" *)
  line : int;  (* 1-based *)
  col : int;  (* 0-based, matching compiler convention *)
  rule : string;  (* e.g. "POLY01" *)
  msg : string;
}

let make ~file ~loc ~rule msg =
  let p = loc.Location.loc_start in
  { file; line = p.Lexing.pos_lnum; col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    rule; msg }

let compare_diag a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let dedup_sort diags =
  List.sort_uniq
    (fun a b ->
      let c = compare_diag a b in
      if c <> 0 then c else String.compare a.msg b.msg)
    diags

let to_text d = Printf.sprintf "%s:%d:%d: %s %s" d.file d.line d.col d.rule d.msg

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json d =
  Printf.sprintf
    {|{"file":"%s","line":%d,"col":%d,"rule":"%s","message":"%s"}|}
    (json_escape d.file) d.line d.col (json_escape d.rule) (json_escape d.msg)

let list_to_json diags =
  "[" ^ String.concat "," (List.map to_json diags) ^ "]"
