(* Parsing, rule execution, suppression filtering and path discovery. *)

type result = {
  diags : Lint_diag.t list;  (* surviving findings, sorted *)
  errors : string list;  (* files that could not be read or parsed *)
}

let empty = { diags = []; errors = [] }

let merge a b =
  { diags = a.diags @ b.diags; errors = a.errors @ b.errors }

(* Directories whose modules POLY01/CMP01 treat as hot paths. *)
let hot_prefixes = [ "lib/graph"; "lib/partition"; "lib/core"; "lib/query" ]

let contains_sub ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let auto_hot display =
  List.exists (fun p -> contains_sub ~sub:p display) hot_prefixes

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_implementation ~display src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf display;
  Parse.implementation lexbuf

let rule_enabled only id =
  match only with [] -> true | ids -> List.mem id ids

(* Lint one [.ml] file.  [hot] overrides the path-based classification;
   [only] restricts to the given rule ids (empty = all). *)
let lint_file ?hot ?(only = []) ~display path =
  match read_file path with
  | exception Sys_error msg -> { empty with errors = [ msg ] }
  | src -> (
      match parse_implementation ~display src with
      | exception exn ->
          let msg =
            match Location.error_of_exn exn with
            | Some (`Ok err) ->
                Format.asprintf "%a" Location.print_report err
            | _ -> Printf.sprintf "%s: %s" display (Printexc.to_string exn)
          in
          { empty with errors = [ msg ] }
      | structure ->
          let hot = match hot with Some h -> h | None -> auto_hot display in
          let ctx = { Lint_rules.display; hot; diags = [] } in
          List.iter
            (fun (r : Lint_rules.rule) ->
              if rule_enabled only r.id && ((not r.hot_only) || hot) then
                r.check ctx structure)
            (Lint_rules.all_rules ());
          let spans =
            Lint_suppress.scan_comments src
            @ Lint_suppress.collect_attribute_spans structure
          in
          {
            diags = Lint_diag.dedup_sort (Lint_suppress.filter spans ctx.diags);
            errors = [];
          })

(* Recursively collect [.ml] files under [path] (skipping build/VCS
   directories), or [path] itself when it is a file. *)
let rec collect_ml path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun entry ->
           if entry = "_build" || entry = "" || entry.[0] = '.' then []
           else collect_ml (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let lint_paths ?hot ?(only = []) ?(prefix = "") paths =
  let files = List.concat_map collect_ml paths in
  List.fold_left
    (fun acc path ->
      let display = prefix ^ path in
      merge acc (lint_file ?hot ~only ~display path))
    empty files
  |> fun r -> { diags = Lint_diag.dedup_sort r.diags; errors = List.rev r.errors }
