(* Whole-program representation for the typed lint tier.

   Built from a list of typed compilation units, this module exposes the
   three things the interprocedural rules need:

   - a table of definitions: every module-level [let] (including those in
     nested structures), keyed by its fully qualified name
     ("Grail.query", "Mono.Itbl" members excepted — functor applications
     are opaque),
   - def/use resolution: a [Path.t] occurring inside a unit maps back to
     the definition it references, across units (all libraries are
     [wrapped false], so unit names are module names), and
   - a call graph over those definitions, for summary fixpoints.

   Name resolution is by identifier stamp inside a unit and by unit name
   across units; external names (stdlib and friends) resolve to their
   qualified path with a leading "Stdlib." dropped, so rules can match
   "Hashtbl.add" or "String.get_int64_le" directly. *)

open Typedtree

type def = {
  key : string;  (** fully qualified name, e.g. ["Grail.query"] *)
  modname : string;  (** unit the definition lives in *)
  unit_display : string;
  loc : Location.t;
  params : (Ident.t * int) list;
      (** binders of the leading parameter chain, with their positional
          index (a tuple pattern contributes several binders with one
          index) *)
  arity : int;
  bodies : expression list;
      (** the function body after stripping the parameter chain; several
          when the last binder is a multi-case [function] *)
  vb_attrs : Parsetree.attributes;
}

type entry = Val of string | Mod of string

type t = {
  units : Lint_cmt.unit_info list;
  defs : (string, def) Hashtbl.t;
  def_order : string list;  (** stable order for deterministic iteration *)
  envs : (string, (string, entry) Hashtbl.t) Hashtbl.t;
      (** per-unit ident environments, keyed by unit modname *)
  calls : (string, string list) Hashtbl.t;
}

(* ------------------------------------------------------------------ *)
(* Traversal helpers shared by the rules *)

(* Apply [f] to each direct child expression of [e], without recursing:
   the default iterator visits children when handed a hook that does not
   recurse further. *)
let iter_child_exprs f e =
  let it =
    { Tast_iterator.default_iterator with expr = (fun _ c -> f c) }
  in
  Tast_iterator.default_iterator.expr it e

(* Apply [f] to every expression in [e]'s subtree, [e] included. *)
let iter_expr_deep f e =
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun it e ->
          f e;
          Tast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e

let exists_expr pred e =
  let found = ref false in
  iter_expr_deep (fun e -> if pred e then found := true) e;
  !found

(* Strip the leading chain of single-case [fun] binders off a binding's
   expression.  Stops at a multi-case [function], whose case patterns
   become the last parameter and whose case bodies are all returned. *)
let split_params expr =
  let rec go idx params e =
    match e.exp_desc with
    | Texp_function { cases = [ { c_lhs; c_guard = None; c_rhs } ]; _ } ->
        let binders =
          List.map (fun id -> (id, idx)) (pat_bound_idents c_lhs)
        in
        go (idx + 1) (params @ binders) c_rhs
    | Texp_function { cases; _ } when cases <> [] ->
        let binders =
          List.concat_map
            (fun c -> List.map (fun id -> (id, idx)) (pat_bound_idents c.c_lhs))
            cases
        in
        (params @ binders, idx + 1, List.map (fun c -> c.c_rhs) cases)
    | _ -> (params, idx, [ e ])
  in
  go 0 [] expr

(* ------------------------------------------------------------------ *)
(* Name utilities *)

let split_name n = String.split_on_char '.' n

let last_component n =
  match List.rev (split_name n) with x :: _ -> x | [] -> n

(* Trailing "Module.fn" pair of a qualified name: the stable suffix that
   survives both external resolution ("Pool.parallel_for") and fixture
   nesting ("Bad_para02.Pool.parallel_for"). *)
let last2 n =
  match List.rev (split_name n) with
  | fn :: m :: _ -> m ^ "." ^ fn
  | _ -> n

let normalize n =
  match split_name n with
  | "Stdlib" :: (_ :: _ as rest) -> String.concat "." rest
  | _ -> n

(* ------------------------------------------------------------------ *)
(* Resolution *)

let env_of t modname =
  match Hashtbl.find_opt t.envs modname with
  | Some env -> env
  | None -> Hashtbl.create 1

(* The qualified-name prefix a module path denotes: a locally bound
   module resolves through the unit environment, an unbound [Pident] is a
   persistent unit (or predef module) and denotes itself. *)
let rec module_prefix env p =
  match p with
  | Path.Pident id -> (
      match Hashtbl.find_opt env (Ident.unique_name id) with
      | Some (Mod prefix) -> Some prefix
      | Some (Val _) -> None
      | None -> Some (Ident.name id))
  | Path.Pdot (p', s) -> (
      match module_prefix env p' with
      | Some prefix -> Some (prefix ^ "." ^ s)
      | None -> None)
  | _ -> None

(* Fully qualified, Stdlib-normalized name of a value path; [None] for
   local variables and parameters (idents with no module-level entry). *)
let resolve_value env p =
  match p with
  | Path.Pident id -> (
      match Hashtbl.find_opt env (Ident.unique_name id) with
      | Some (Val key) -> Some key
      | _ -> None)
  | Path.Pdot (p', s) -> (
      match module_prefix env p' with
      | Some prefix -> Some (normalize (prefix ^ "." ^ s))
      | None -> None)
  | _ -> None

(* Resolution bundled with a unit's environment, the form rules use. *)
type scope = { env : (string, entry) Hashtbl.t }

let scope_of t (d : def) = { env = env_of t d.modname }
let scope_of_unit t (u : Lint_cmt.unit_info) = { env = env_of t u.modname }

let resolve scope p = resolve_value scope.env p

(* Resolved name of the expression in function-head position, if any. *)
let head_name scope e =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> resolve scope p
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Building *)

let build (units : Lint_cmt.unit_info list) =
  let defs = Hashtbl.create 512 in
  let order = ref [] in
  let envs = Hashtbl.create 16 in
  (* Pass 1: collect definitions and per-unit environments. *)
  List.iter
    (fun (u : Lint_cmt.unit_info) ->
      let env = Hashtbl.create 128 in
      Hashtbl.replace envs u.modname env;
      let add_def ~prefix id vb =
        let key = prefix ^ "." ^ Ident.name id in
        let params, arity, bodies = split_params vb.vb_expr in
        Hashtbl.replace env (Ident.unique_name id) (Val key);
        if not (Hashtbl.mem defs key) then begin
          Hashtbl.replace defs key
            {
              key;
              modname = u.modname;
              unit_display = u.display;
              loc = vb.vb_loc;
              params;
              arity;
              bodies;
              vb_attrs = vb.vb_attributes;
            };
          order := key :: !order
        end
      in
      let rec structure ~prefix str =
        List.iter
          (fun item ->
            match item.str_desc with
            | Tstr_value (_, vbs) ->
                List.iter
                  (fun vb ->
                    match vb.vb_pat.pat_desc with
                    | Tpat_var (id, _) -> add_def ~prefix id vb
                    | Tpat_alias (_, id, _) -> add_def ~prefix id vb
                    | _ -> ())
                  vbs
            | Tstr_module mb -> module_binding ~prefix mb
            | Tstr_recmodule mbs -> List.iter (module_binding ~prefix) mbs
            | _ -> ())
          str.str_items
      and module_binding ~prefix mb =
        match mb.mb_id with
        | None -> ()
        | Some id ->
            let mprefix = prefix ^ "." ^ Ident.name id in
            Hashtbl.replace env (Ident.unique_name id) (Mod mprefix);
            module_expr ~prefix:mprefix mb.mb_expr
      and module_expr ~prefix me =
        match me.mod_desc with
        | Tmod_structure str -> structure ~prefix str
        | Tmod_constraint (me, _, _, _) -> module_expr ~prefix me
        | _ -> ()
      in
      structure ~prefix:u.modname u.str)
    units;
  let t =
    {
      units;
      defs;
      def_order = List.rev !order;
      envs;
      calls = Hashtbl.create 512;
    }
  in
  (* Pass 2: call-graph edges — every reference from a definition's body
     to another definition. *)
  List.iter
    (fun key ->
      let d =
        match Hashtbl.find_opt defs key with
        | Some d -> d
        | None -> invalid_arg ("Lint_program.build: unknown def " ^ key)
      in
      let scope = scope_of t d in
      let out = ref [] in
      List.iter
        (iter_expr_deep (fun e ->
             match e.exp_desc with
             | Texp_ident (p, _, _) -> (
                 match resolve scope p with
                 | Some callee
                   when callee <> key && Hashtbl.mem defs callee ->
                     if not (List.mem callee !out) then out := callee :: !out
                 | _ -> ())
             | _ -> ()))
        d.bodies;
      Hashtbl.replace t.calls key (List.sort compare !out))
    t.def_order;
  t

let def_of t key = Hashtbl.find_opt t.defs key

let iter_defs t f =
  List.iter
    (fun k -> match Hashtbl.find_opt t.defs k with Some d -> f d | None -> ())
    t.def_order
let def_keys t = t.def_order

let callees t key =
  Option.value (Hashtbl.find_opt t.calls key) ~default:[]

(* ------------------------------------------------------------------ *)
(* Shared classification *)

let pool_entry_names =
  [
    "Pool.parallel_for";
    "Pool.parallel_for_ranges";
    "Pool.parallel_map";
    "Pool.parallel_map_list";
  ]

let is_pool_entry name = List.mem (last2 name) pool_entry_names

(* Mirrors the syntactic PARA01 table ([Lint_rules.mutating_module]), with
   the containers the typed tier can afford to track precisely added:
   Queue/Stack (passed across helpers far more often than they appear
   literally in closures). *)
let mutating_container m =
  m = "Hashtbl" || m = "Buffer" || m = "Queue" || m = "Stack"
  || (let n = String.length m in
      n >= 3 && String.lowercase_ascii (String.sub m (n - 3) 3) = "tbl")

let mutating_container_fn =
  [
    "add"; "replace"; "remove"; "reset"; "clear"; "add_char"; "add_string";
    "add_bytes"; "add_subbytes"; "add_substring"; "add_buffer"; "add_channel";
    "truncate"; "filter_map_inplace"; "push"; "pop"; "take"; "transfer";
    "add_seq"; "replace_seq";
  ]

(* [Some i]: a call to [name] mutates its [i]-th positional argument. *)
let mutating_target name =
  match name with
  | ":=" | "incr" | "decr" -> Some 0
  | _ -> (
      match List.rev (split_name name) with
      | fn :: m :: _ when mutating_container m && List.mem fn mutating_container_fn
        ->
          Some 0
      | _ -> None)

(* Modules providing sanctioned concurrency or observability primitives:
   mutation through these is the point, not a race. *)
let sanctioned_module m =
  List.mem m
    [
      "Atomic"; "Mutex"; "Condition"; "Semaphore"; "Domain"; "Pool"; "Obs";
      "Obs_metrics"; "Obs_trace"; "Obs_state"; "Obs_clock"; "Obs_export";
    ]

let sanctioned_callee name =
  match split_name name with m :: _ :: _ -> sanctioned_module m | _ -> false

let contains_sub ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Units whose definitions get neutral summaries: the observability and
   pool layers mutate their own internal state by design (per-domain
   metric cells, work queues), under their own synchronisation. *)
let exempt_unit (d : def) =
  contains_sub ~sub:"lib/obs" d.unit_display
  || contains_sub ~sub:"lib/parallel" d.unit_display

let raise_family =
  [ "raise"; "raise_notrace"; "failwith"; "invalid_arg"; "assert_failure" ]

let is_raise_name name = List.mem name raise_family

(* The repo's metrics-gating idiom: work under [if Obs.metrics_on () then]
   (or [tracing_on]/[enabled]) only runs when observability is switched
   on, so hot-loop rules skip those branches. *)
let is_metrics_gate scope cond =
  exists_expr
    (fun e ->
      match e.exp_desc with
      | Texp_ident (p, _, _) -> (
          match resolve scope p with
          | Some n -> (
              match last2 n with
              | "Obs.metrics_on" | "Obs.tracing_on" | "Obs.enabled" -> true
              | _ -> false)
          | None -> false)
      | _ -> false)
    cond

let has_attr name (attrs : Parsetree.attributes) =
  List.exists
    (fun (a : Parsetree.attribute) -> a.attr_name.txt = name)
    attrs

(* The ALLOC02 opt-in marker: on a binding ([let[@lint.hot_loop] f ...])
   or on an expression ([(while ... done) [@lint.hot_loop]]). *)
let hot_loop_attr = "lint.hot_loop"
