(* Lint rules and their registry.

   Each rule is an [Ast_iterator] pass over a parsed implementation.  Rules
   report through a shared context; suppression filtering happens later in
   the driver, so rules stay oblivious to it.

   Shipped rules:

   - PARA01  race lint: mutation of captured shared state inside closures
             handed to [Pool.parallel_for] / [parallel_for_ranges] /
             [parallel_map] / [parallel_map_list].
   - POLY01  polymorphic comparison on hot paths: [min] / [max] /
             [Hashtbl.hash] anywhere, and [compare] / [=] / [<>] escaping
             as first-class functions (direct full applications are
             specialised by the compiler when the type is known, so they
             are not flagged).
   - PARTIAL01  partial stdlib functions: [List.hd] / [List.tl] /
             [List.nth] / [Option.get].
   - CMP01   polymorphic [Hashtbl.create] in hot modules, where a keyed
             [Hashtbl.Make] table hashes and compares monomorphically.
   - CSR01   retired array-materializing adjacency accessors
             ([Digraph.succ] / [Digraph.pred] / [Digraph.edges]): the CSR
             core answers these with slices and folds, no allocation.
   - ALLOC01 hash-table creation ([Hashtbl.create] or any keyed [*tbl]
             table) inside [lib/partition], the flat-array refinement
             substrate whose hot loops are contractually allocation-free.
             Scoped by display path, not by the hot classification.
   - OBS01   raw clocks ([Unix.gettimeofday] / [Sys.time]) anywhere
             outside [lib/obs]: timing goes through the monotonic
             [Obs.Clock] so durations cannot go negative under NTP steps
             and all measurement shares one code path.
   - OBS02   direct console output ([print_string] / [Printf.printf] /
             [prerr_endline] / [Format.eprintf] ...) inside [lib/server]
             and [lib/parallel]: daemon and pool diagnostics go through
             the leveled, per-domain-buffered [Obs.Log], so lines never
             interleave across domains and operators can gate/format
             them. *)

open Parsetree

type ctx = {
  display : string;  (* path shown in diagnostics *)
  hot : bool;  (* file lives under a designated hot-path directory *)
  mutable diags : Lint_diag.t list;
}

let report ctx ~loc ~rule msg =
  ctx.diags <- Lint_diag.make ~file:ctx.display ~loc ~rule msg :: ctx.diags

type rule = {
  id : string;
  doc : string;
  hot_only : bool;
  check : ctx -> structure -> unit;
}

let registry : rule list ref = ref []
let register r = registry := r :: !registry
let all_rules () = List.sort (fun a b -> String.compare a.id b.id) !registry

(* ------------------------------------------------------------------ *)
(* Longident helpers *)

let path_of_longident lid =
  match Longident.flatten lid with
  | path -> Some path
  | exception _ -> None  (* Lapply *)

(* Normalised path of an identifier expression, with a leading [Stdlib]
   dropped so ["Stdlib"; "compare"] and ["compare"] match the same way. *)
let path_of_expr e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match path_of_longident txt with
      | Some ("Stdlib" :: rest) when rest <> [] -> Some rest
      | p -> p)
  | _ -> None

let rec pat_vars acc p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> txt :: acc
  | Ppat_alias (p, { txt; _ }) -> pat_vars (txt :: acc) p
  | Ppat_tuple ps | Ppat_array ps -> List.fold_left pat_vars acc ps
  | Ppat_construct (_, Some (_, p))
  | Ppat_variant (_, Some p)
  | Ppat_constraint (p, _)
  | Ppat_lazy p
  | Ppat_open (_, p)
  | Ppat_exception p -> pat_vars acc p
  | Ppat_or (a, b) -> pat_vars (pat_vars acc a) b
  | Ppat_record (fields, _) ->
      List.fold_left (fun acc (_, p) -> pat_vars acc p) acc fields
  | _ -> acc

(* ------------------------------------------------------------------ *)
(* PARA01: shared-state mutation inside parallel closures *)

let pool_entry_points =
  [ "parallel_for"; "parallel_for_ranges"; "parallel_map"; "parallel_map_list" ]

let is_pool_entry path =
  match List.rev path with
  | fn :: rest ->
      List.mem fn pool_entry_points
      && (match rest with
         | [] -> true  (* opened Pool *)
         | m :: _ -> m = "Pool")
  | [] -> false

(* Modules whose imperative operations PARA01 treats as shared-state
   mutation when applied to a captured target: the stdlib [Hashtbl] and
   [Buffer], plus keyed tables by convention ([Itbl], [Ptbl], ... -- any
   module name ending in "tbl"/"Tbl", as produced by [Hashtbl.Make]). *)
let mutating_module m =
  m = "Hashtbl" || m = "Buffer"
  || (let n = String.length m in
      n >= 3
      && (let suffix = String.lowercase_ascii (String.sub m (n - 3) 3) in
          suffix = "tbl"))

let mutating_fn =
  [ "add"; "replace"; "remove"; "reset"; "clear"; "add_char"; "add_string";
    "add_bytes"; "add_subbytes"; "add_substring"; "add_buffer"; "add_channel";
    "truncate"; "filter_map_inplace" ]

(* The head variable a mutation targets: [Some name] for a bare variable,
   [Some "M.x"] for a qualified (necessarily global) path, [None] when the
   target is computed (e.g. [arr.(i)], a function result) and therefore
   outside this rule's scope. *)
let target_head e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident n; _ } -> Some (n, false)
  | Pexp_ident { txt; _ } -> (
      match path_of_longident txt with
      | Some path -> Some (String.concat "." path, true)
      | None -> None)
  | _ -> None

let check_closure_body ctx locals body =
  let locals : (string, unit) Hashtbl.t = locals in
  let is_local n = Hashtbl.mem locals n in
  let flag loc what name =
    report ctx ~loc ~rule:"PARA01"
      (Printf.sprintf
         "%s mutates `%s`, which is captured from outside this parallel \
          closure; parallel bodies may only write disjoint indices of \
          shared arrays (define the state inside the closure, or suppress \
          with a `lint: allow PARA01` comment if access is provably \
          disjoint)"
         what name)
  in
  let flag_if_captured loc what target =
    match target_head target with
    | Some (name, qualified) when qualified || not (is_local name) ->
        flag loc what name
    | _ -> ()
  in
  let open Ast_iterator in
  let super = default_iterator in
  let add_pat p = List.iter (fun v -> Hashtbl.replace locals v ()) (pat_vars [] p) in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_let (_, vbs, _) -> List.iter (fun vb -> add_pat vb.pvb_pat) vbs
    | Pexp_fun (_, _, p, _) -> add_pat p
    | Pexp_function cases | Pexp_match (_, cases) | Pexp_try (_, cases) ->
        List.iter (fun c -> add_pat c.pc_lhs) cases
    | Pexp_for (p, _, _, _, _) -> add_pat p
    | Pexp_setfield (target, field, _) ->
        let fname =
          match path_of_longident field.txt with
          | Some p -> String.concat "." p
          | None -> "<field>"
        in
        flag_if_captured e.pexp_loc
          (Printf.sprintf "record-field write `%s <-`" fname)
          target
    | Pexp_apply (f, args) -> (
        match (path_of_expr f, args) with
        | Some [ ":=" ], (_, lhs) :: _ ->
            flag_if_captured e.pexp_loc "`:=`" lhs
        | Some [ ("incr" | "decr") as op ], (_, lhs) :: _ ->
            flag_if_captured e.pexp_loc (Printf.sprintf "`%s`" op) lhs
        | Some path, (_, first) :: _ -> (
            match List.rev path with
            | fn :: m :: _ when mutating_module m && List.mem fn mutating_fn ->
                flag_if_captured e.pexp_loc
                  (Printf.sprintf "`%s.%s`" m fn)
                  first
            | _ -> ())
        | _ -> ())
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr } in
  it.expr it body

(* Strip [fun]/[newtype] binders off a closure literal, accumulating the
   parameter variables; returns [None] when the argument expression is not
   a syntactic closure (an identifier, a partial application, ...). *)
let closure_parts e =
  let locals = Hashtbl.create 16 in
  let add_pat p = List.iter (fun v -> Hashtbl.replace locals v ()) (pat_vars [] p) in
  let rec strip e =
    match e.pexp_desc with
    | Pexp_fun (_, _, p, body) ->
        add_pat p;
        Some (strip_tail body)
    | Pexp_newtype (_, body) -> strip body
    | Pexp_function cases ->
        List.iter (fun c -> add_pat c.pc_lhs) cases;
        Some
          (List.concat_map
             (fun c -> match c.pc_guard with
                | Some g -> [ g; c.pc_rhs ]
                | None -> [ c.pc_rhs ])
             cases)
    | _ -> None
  and strip_tail body =
    (* Inner [fun] layers are part of the same closure. *)
    match body.pexp_desc with
    | Pexp_fun (_, _, p, inner) ->
        add_pat p;
        strip_tail inner
    | Pexp_newtype (_, inner) -> strip_tail inner
    | _ -> [ body ]
  in
  match strip e with Some bodies -> Some (locals, bodies) | None -> None

let para01 =
  {
    id = "PARA01";
    hot_only = false;
    doc =
      "Mutation of captured shared state (ref :=, incr/decr, Hashtbl/Buffer \
       updates, record-field writes) inside a closure passed to \
       Pool.parallel_for / parallel_for_ranges / parallel_map / \
       parallel_map_list. Parallel bodies must only write disjoint indices \
       of shared arrays (the Pool contract); anything else is a data race.";
    check =
      (fun ctx structure ->
        let open Ast_iterator in
        let super = default_iterator in
        let expr it e =
          (match e.pexp_desc with
          | Pexp_apply (f, args) -> (
              match path_of_expr f with
              | Some path when is_pool_entry path ->
                  List.iter
                    (fun (_, arg) ->
                      match closure_parts arg with
                      | Some (locals, bodies) ->
                          List.iter (check_closure_body ctx locals) bodies
                      | None -> ())
                    args
              | _ -> ())
          | _ -> ());
          super.expr it e
        in
        let it = { super with expr } in
        it.structure it structure);
  }

(* ------------------------------------------------------------------ *)
(* POLY01: polymorphic comparison on hot paths *)

let poly_comparators = [ "compare"; "="; "<>" ]
let poly_always = [ "min"; "max" ]

let poly01 =
  {
    id = "POLY01";
    hot_only = true;
    doc =
      "Polymorphic comparison in a hot-path module (lib/graph, \
       lib/partition, lib/core, lib/query): min/max and Hashtbl.hash \
       anywhere, and compare / = / <> escaping as first-class functions \
       (e.g. Array.sort compare). Use a monomorphic version (Int.compare, \
       Mono.imin, an FNV-1a string hash, ...) instead; the generic \
       caml_compare walk is a memory-bound interpreter of the value's \
       shape.";
    check =
      (fun ctx structure ->
        (* Names locally rebound in the file (e.g. a module-level
           [let compare : int -> int -> int = ...]) are monomorphic by
           construction: bare uses from the binding's line onward are not
           flagged.  Tracking is by line, not scope -- precise enough for
           the shadow-at-top-of-module idiom this rule encourages. *)
        let shadowed = Hashtbl.create 8 in
        let collect =
          let open Ast_iterator in
          let super = default_iterator in
          let value_binding it vb =
            let line = vb.pvb_loc.loc_start.pos_lnum in
            List.iter
              (fun v ->
                if List.mem v poly_comparators || List.mem v poly_always then
                  match Hashtbl.find_opt shadowed v with
                  | Some l when l <= line -> ()
                  | _ -> Hashtbl.replace shadowed v line)
              (pat_vars [] vb.pvb_pat);
            super.value_binding it vb
          in
          { super with value_binding }
        in
        collect.structure collect structure;
        let is_shadowed n ~(loc : Location.t) =
          match Hashtbl.find_opt shadowed n with
          | Some l -> l <= loc.loc_start.pos_lnum
          | None -> false
        in
        let flag_hash loc =
          report ctx ~loc ~rule:"POLY01"
            "Hashtbl.hash is a polymorphic structure walk and its result \
             varies across OCaml versions; hash the key monomorphically \
             (e.g. an FNV-1a string hash, or the int itself)"
        in
        let flag_minmax loc name =
          report ctx ~loc ~rule:"POLY01"
            (Printf.sprintf
               "`%s` dispatches through polymorphic compare on every call \
                (it is never specialised); use a typed version such as \
                Mono.i%s / Mono.f%s"
               name name name)
        in
        let flag_escape loc name =
          report ctx ~loc ~rule:"POLY01"
            (Printf.sprintf
               "`%s` escapes as a first-class function here, so the \
                compiler cannot specialise it and every call runs the \
                generic caml_compare walk; pass a monomorphic comparison \
                (Int.compare, String.equal, ...) instead"
               name)
        in
        (* A bare use of one of the tracked names; [applied_args] is the
           number of explicit arguments when the ident heads an
           application, or 0 when it escapes. *)
        let check_ident loc path ~applied_args =
          match path with
          | [ "Hashtbl"; ("hash" | "seeded_hash") ] -> flag_hash loc
          | [ name ] when List.mem name poly_always && not (is_shadowed name ~loc)
            ->
              flag_minmax loc name
          | [ name ]
            when List.mem name poly_comparators
                 && (not (is_shadowed name ~loc))
                 && applied_args < 2 ->
              flag_escape loc name
          | _ -> ()
        in
        let open Ast_iterator in
        let super = default_iterator in
        let expr it e =
          (match e.pexp_desc with
          | Pexp_apply (f, args) -> (
              match path_of_expr f with
              | Some path ->
                  check_ident f.pexp_loc path ~applied_args:(List.length args)
              | None -> ())
          | Pexp_ident _ -> (
              (* Escaping position: argument, binding rhs, ... (idents that
                 head an application are handled above; the default
                 iterator will revisit them, so applications are filtered
                 out by the caller shape). *)
              match path_of_expr e with
              | Some path -> check_ident e.pexp_loc path ~applied_args:0
              | None -> ())
          | _ -> ());
          match e.pexp_desc with
          | Pexp_apply (f, args) ->
              (* Skip the head ident (already judged with its arity); an
                 ident in head position must not be re-flagged as
                 escaping. *)
              (match f.pexp_desc with
              | Pexp_ident _ -> ()
              | _ -> it.expr it f);
              List.iter (fun (_, a) -> it.expr it a) args
          | _ -> super.expr it e
        in
        let it = { super with expr } in
        it.structure it structure);
  }

(* ------------------------------------------------------------------ *)
(* PARTIAL01: partial stdlib functions *)

let partial_fns =
  [
    ([ "List"; "hd" ], "List.hd");
    ([ "List"; "tl" ], "List.tl");
    ([ "List"; "nth" ], "List.nth");
    ([ "ListLabels"; "hd" ], "ListLabels.hd");
    ([ "ListLabels"; "tl" ], "ListLabels.tl");
    ([ "ListLabels"; "nth" ], "ListLabels.nth");
    ([ "Option"; "get" ], "Option.get");
    (* Not-found raisers: the [_opt] variants force the caller to decide
       what absence means instead of leaking a bare [Not_found]. *)
    ([ "Hashtbl"; "find" ], "Hashtbl.find");
    ([ "List"; "find" ], "List.find");
    ([ "ListLabels"; "find" ], "ListLabels.find");
    ([ "String"; "index" ], "String.index");
    ([ "StringLabels"; "index" ], "StringLabels.index");
  ]

let partial01 =
  {
    id = "PARTIAL01";
    hot_only = false;
    doc =
      "Partial stdlib functions (List.hd, List.tl, List.nth, Option.get, \
       Hashtbl.find, List.find, String.index) raise on the shapes they \
       exclude with a message that names neither caller nor data. \
       Destructure with a total match, or use the [_opt] variant, carrying \
       a real error message instead. Test code is exempt by construction: \
       the lint aliases only cover lib/, bin/ and bench/.";
    check =
      (fun ctx structure ->
        let open Ast_iterator in
        let super = default_iterator in
        let expr it e =
          (match e.pexp_desc with
          | Pexp_ident _ -> (
              match path_of_expr e with
              | Some path -> (
                  match List.assoc_opt path partial_fns with
                  | Some name ->
                      report ctx ~loc:e.pexp_loc ~rule:"PARTIAL01"
                        (Printf.sprintf
                           "`%s` is partial and fails with a context-free \
                            exception; use a total match with a real error \
                            message"
                           name)
                  | None -> ())
              | None -> ())
          | _ -> ());
          super.expr it e
        in
        let it = { super with expr } in
        it.structure it structure);
  }

(* ------------------------------------------------------------------ *)
(* CSR01: retired array-materializing adjacency accessors *)

let csr_retired =
  [
    ([ "Digraph"; "succ" ], "Digraph.succ",
     "Digraph.iter_succ / fold_succ / succ_slice");
    ([ "Digraph"; "pred" ], "Digraph.pred",
     "Digraph.iter_pred / fold_pred / pred_slice");
    ([ "Digraph"; "edges" ], "Digraph.edges",
     "Digraph.iter_edges / fold_edges (or edge_array when random access \
      is genuinely needed)");
  ]

let csr01 =
  {
    id = "CSR01";
    (* Not hot-only: the accessors are retired everywhere, and bin/ and
       bench/ are linted cold -- a hot-only rule would let regressions
       slip in there. *)
    hot_only = false;
    doc =
      "Array-materializing adjacency accessors (Digraph.succ, Digraph.pred, \
       Digraph.edges) were retired by the flat-CSR refactor: each call \
       allocated a fresh array/list per node. Iterate with \
       Digraph.iter_succ / fold_succ (and *_pred), take an O(1) view with \
       succ_slice / pred_slice, or walk edges with iter_edges / fold_edges; \
       edge_array exists for the rare shuffle-style random-access need.";
    check =
      (fun ctx structure ->
        let open Ast_iterator in
        let super = default_iterator in
        let expr it e =
          (match e.pexp_desc with
          | Pexp_ident _ -> (
              match path_of_expr e with
              | Some path -> (
                  match
                    List.find_opt (fun (p, _, _) -> p = path) csr_retired
                  with
                  | Some (_, name, instead) ->
                      report ctx ~loc:e.pexp_loc ~rule:"CSR01"
                        (Printf.sprintf
                           "`%s` materializes an adjacency array per call \
                            and is retired from the CSR core; use %s"
                           name instead)
                  | None -> ())
              | None -> ())
          | _ -> ());
          super.expr it e
        in
        let it = { super with expr } in
        it.structure it structure);
  }

(* ------------------------------------------------------------------ *)
(* CMP01: polymorphic hash tables in hot modules *)

let cmp01 =
  {
    id = "CMP01";
    hot_only = true;
    doc =
      "Polymorphic Hashtbl.create in a hot-path module: every operation \
       hashes and compares keys through the generic structural walk. Use a \
       keyed table (Hashtbl.Make) with monomorphic hash/equal -- e.g. \
       Mono.Itbl for int keys, Mono.Ptbl for int-pair keys, Mono.Stbl for \
       string keys.";
    check =
      (fun ctx structure ->
        let open Ast_iterator in
        let super = default_iterator in
        let expr it e =
          (match e.pexp_desc with
          | Pexp_ident _ -> (
              match path_of_expr e with
              | Some [ "Hashtbl"; "create" ] ->
                  report ctx ~loc:e.pexp_loc ~rule:"CMP01"
                    "polymorphic `Hashtbl.create` in a hot-path module; use \
                     a keyed table with monomorphic hash/equal (Mono.Itbl, \
                     Mono.Ptbl, Mono.Stbl, or a local Hashtbl.Make)"
              | _ -> ())
          | _ -> ());
          super.expr it e
        in
        let it = { super with expr } in
        it.structure it structure);
  }

(* ------------------------------------------------------------------ *)
(* ALLOC01: hash tables in the refinement substrate *)

(* Self-scoped by path rather than by the hot classification: the other
   hot directories (lib/graph, lib/core, lib/query) use keyed tables
   legitimately, but lib/partition is the flat-array refinement engine —
   its whole point is that mark/split/refine run on preallocated arrays. *)
let alloc01_scope = "lib/partition"

let contains_sub ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Hash-table modules: the stdlib [Hashtbl] plus keyed tables by convention
   ([Mono.Itbl], [Sig_tbl], ... -- any module name ending "tbl"/"Tbl", as
   produced by [Hashtbl.Make]). *)
let table_module m =
  m = "Hashtbl"
  || (let n = String.length m in
      n >= 3 && String.lowercase_ascii (String.sub m (n - 3) 3) = "tbl")

let alloc01 =
  {
    id = "ALLOC01";
    hot_only = false;
    doc =
      "Hash-table creation (Hashtbl.create or a keyed *tbl table such as \
       Mono.Itbl / Mono.Ptbl) inside lib/partition, the flat-array \
       partition-refinement substrate: its hot loops (mark, split, the \
       Paige-Tarjan rounds) are contractually zero-allocation, with edge \
       counts in a flat counter pool indexed by CSR edge position. Keep \
       tables out of refinement code, or suppress with `lint: allow \
       ALLOC01` for set-up / oracle / normalization code that runs once.";
    check =
      (fun ctx structure ->
        if contains_sub ~sub:alloc01_scope ctx.display then begin
          let open Ast_iterator in
          let super = default_iterator in
          let expr it e =
            (match e.pexp_desc with
            | Pexp_ident _ -> (
                match path_of_expr e with
                | Some path -> (
                    match List.rev path with
                    | "create" :: m :: _ when table_module m ->
                        report ctx ~loc:e.pexp_loc ~rule:"ALLOC01"
                          (Printf.sprintf
                             "`%s.create` allocates a hash table inside \
                              lib/partition, the zero-allocation refinement \
                              substrate; keep tables out of refinement \
                              loops (flat arrays indexed by node / block / \
                              CSR edge position), or suppress with `lint: \
                              allow ALLOC01` for one-shot set-up or oracle \
                              code"
                             m)
                    | _ -> ())
                | None -> ())
            | _ -> ());
            super.expr it e
          in
          let it = { super with expr } in
          it.structure it structure
        end);
  }

(* ------------------------------------------------------------------ *)
(* OBS01: raw clocks outside the observability layer *)

(* Inverse of the ALLOC01 scoping: fires everywhere EXCEPT lib/obs, the
   one place allowed to touch a raw clock (Obs_clock wraps the monotonic
   one). *)
let obs01_scope = "lib/obs"

let raw_clocks =
  [
    ([ "Unix"; "gettimeofday" ], "Unix.gettimeofday");
    ([ "UnixLabels"; "gettimeofday" ], "UnixLabels.gettimeofday");
    ([ "Sys"; "time" ], "Sys.time");
  ]

let obs01 =
  {
    id = "OBS01";
    (* Not hot-only: ad-hoc timing lives in cold front ends (bin/, bench/,
       lib/workload) — exactly where the duplicated gettimeofday deltas
       used to accumulate. *)
    hot_only = false;
    doc =
      "Raw clock reads (Unix.gettimeofday, Sys.time) outside lib/obs. \
       Wall-clock time is stepped by NTP, so deltas can go negative, and \
       Sys.time is process CPU time, which under a domain pool sums every \
       worker's cycles; both also bypass the span/metrics layer. Time with \
       Obs.time (result + seconds), Obs.Clock.now_ns / elapsed_s, or wrap \
       the region in Obs.span instead.";
    check =
      (fun ctx structure ->
        if not (contains_sub ~sub:obs01_scope ctx.display) then begin
          let open Ast_iterator in
          let super = default_iterator in
          let expr it e =
            (match e.pexp_desc with
            | Pexp_ident _ -> (
                match path_of_expr e with
                | Some path -> (
                    match
                      List.find_opt (fun (p, _) -> p = path) raw_clocks
                    with
                    | Some (_, name) ->
                        report ctx ~loc:e.pexp_loc ~rule:"OBS01"
                          (Printf.sprintf
                             "`%s` is a raw clock read outside lib/obs; \
                              time with Obs.time / Obs.Clock.now_ns (the \
                              monotonic clock) or wrap the region in \
                              Obs.span, so durations cannot go negative \
                              and all measurement shares one code path"
                             name)
                    | None -> ())
                | None -> ())
            | _ -> ());
            super.expr it e
          in
          let it = { super with expr } in
          it.structure it structure
        end);
  }

(* ------------------------------------------------------------------ *)
(* CSR02: the dense CSR escape hatch outside the storage layer *)

(* The pluggable-backend refactor turned [Digraph.out_csr] / [in_csr] into
   an escape hatch: on the mapped and varint backends each call forces (and
   caches) a flat heap copy of the whole adjacency, silently defeating
   zero-copy mmap loading and the compact encoding.  The storage layer
   itself (lib/graph) owns the representation and may use them freely;
   everywhere else iterates through the backend-polymorphic accessors, and
   the few kernels that genuinely need dense arrays carry a justified
   `lint: allow CSR02`. *)
let csr02_scope = "lib/graph"

let csr_dense =
  [
    ([ "Digraph"; "out_csr" ], "Digraph.out_csr");
    ([ "Digraph"; "in_csr" ], "Digraph.in_csr");
  ]

let csr02 =
  {
    id = "CSR02";
    (* Not hot-only: a single cold out_csr call on a mapped graph pulls the
       whole adjacency onto the heap, so bin/ and bench/ matter just as
       much as the kernels. *)
    hot_only = false;
    doc =
      "Dense CSR views (Digraph.out_csr, Digraph.in_csr) outside lib/graph: \
       on the mapped and varint storage backends each call forces and \
       caches a flat heap copy of the entire adjacency, defeating zero-copy \
       mmap loading and the compact encoding. Iterate with Digraph.iter_succ \
       / fold_succ / succ_slice (and the *_pred mirrors), which dispatch per \
       backend without materializing; a kernel that genuinely needs the \
       dense arrays suppresses with `lint: allow CSR02` plus a \
       justification.";
    check =
      (fun ctx structure ->
        if not (contains_sub ~sub:csr02_scope ctx.display) then begin
          let open Ast_iterator in
          let super = default_iterator in
          let expr it e =
            (match e.pexp_desc with
            | Pexp_ident _ -> (
                match path_of_expr e with
                | Some path -> (
                    match List.find_opt (fun (p, _) -> p = path) csr_dense with
                    | Some (_, name) ->
                        report ctx ~loc:e.pexp_loc ~rule:"CSR02"
                          (Printf.sprintf
                             "`%s` materializes the dense CSR outside \
                              lib/graph, forcing a full heap copy on the \
                              mapped and varint backends; iterate with \
                              Digraph.iter_succ / fold_succ / succ_slice \
                              (or *_pred), or suppress with `lint: allow \
                              CSR02` where the dense arrays are genuinely \
                              required"
                             name)
                    | None -> ())
                | None -> ())
            | _ -> ());
            super.expr it e
          in
          let it = { super with expr } in
          it.structure it structure
        end);
  }

(* ------------------------------------------------------------------ *)
(* SRV01: no blocking primitives inside the serving layer *)

(* The daemon's event loop is single-threaded: one blocking sleep or one
   unbounded "read exactly N bytes" call stalls every connection at once.
   lib/server therefore reads in bounded [Unix.read] chunks driven by the
   protocol's length prefix and never sleeps — retry/backoff loops belong
   in the callers (bin/, bench/), which may block freely. *)
let srv01_scope = "lib/server"

let srv_blocking =
  [
    ([ "Unix"; "sleep" ], "Unix.sleep");
    ([ "Unix"; "sleepf" ], "Unix.sleepf");
    ([ "UnixLabels"; "sleep" ], "UnixLabels.sleep");
    ([ "UnixLabels"; "sleepf" ], "UnixLabels.sleepf");
    ([ "Thread"; "delay" ], "Thread.delay");
    ([ "really_input" ], "really_input");
    ([ "really_input_string" ], "really_input_string");
    ([ "In_channel"; "really_input" ], "In_channel.really_input");
    ([ "In_channel"; "really_input_string" ], "In_channel.really_input_string");
    ([ "input_line" ], "input_line");
    ([ "In_channel"; "input_line" ], "In_channel.input_line");
  ]

let srv01 =
  {
    id = "SRV01";
    (* lib/server is linted cold (no kernels), so the rule must not be
       hot-only to run there at all. *)
    hot_only = false;
    doc =
      "Blocking primitives (Unix.sleep/sleepf, Thread.delay, really_input, \
       really_input_string, input_line) inside lib/server: the daemon's \
       event loop is single-threaded, so one blocking call stalls every \
       connection and wrecks the latency tail. Read in bounded Unix.read \
       chunks driven by the protocol's length prefix, let Unix.select do \
       the waiting, and keep retry/backoff sleeps in the callers (bin/, \
       bench/).";
    check =
      (fun ctx structure ->
        if contains_sub ~sub:srv01_scope ctx.display then begin
          let open Ast_iterator in
          let super = default_iterator in
          let expr it e =
            (match e.pexp_desc with
            | Pexp_ident _ -> (
                match path_of_expr e with
                | Some path -> (
                    match
                      List.find_opt (fun (p, _) -> p = path) srv_blocking
                    with
                    | Some (_, name) ->
                        report ctx ~loc:e.pexp_loc ~rule:"SRV01"
                          (Printf.sprintf
                             "`%s` blocks the single-threaded serving loop, \
                              stalling every connection at once; use \
                              bounded Unix.read chunks driven by the frame \
                              length prefix and Unix.select timeouts, and \
                              move sleeps/retries into the callers"
                             name)
                    | None -> ())
                | None -> ())
            | _ -> ());
            super.expr it e
          in
          let it = { super with expr } in
          it.structure it structure
        end);
  }

(* ------------------------------------------------------------------ *)
(* OBS02: ad-hoc console output inside the daemon and pool layers *)

(* The telemetry plane made lib/server and lib/parallel multi-writer:
   the event loop and every pool worker can emit diagnostics.  A bare
   [print_string]/[Printf.printf] bypasses the per-domain log buffers
   (interleaved bytes under contention), ignores the operator's
   --log-level / --log-json choice, and — on stdout — corrupts any
   machine-readable output the front end promised.  All output from
   these layers goes through [Obs.Log]. *)
let obs02_scopes = [ "lib/server"; "lib/parallel" ]

let console_writers =
  [
    ([ "print_string" ], "print_string");
    ([ "print_endline" ], "print_endline");
    ([ "print_newline" ], "print_newline");
    ([ "print_char" ], "print_char");
    ([ "prerr_string" ], "prerr_string");
    ([ "prerr_endline" ], "prerr_endline");
    ([ "prerr_newline" ], "prerr_newline");
    ([ "Printf"; "printf" ], "Printf.printf");
    ([ "Printf"; "eprintf" ], "Printf.eprintf");
    ([ "Format"; "printf" ], "Format.printf");
    ([ "Format"; "eprintf" ], "Format.eprintf");
    ([ "Format"; "print_string" ], "Format.print_string");
  ]

let obs02 =
  {
    id = "OBS02";
    (* lib/server and lib/parallel are linted cold, so the rule must not
       be hot-only to run there at all. *)
    hot_only = false;
    doc =
      "Direct console output (print_string, print_endline, Printf.printf, \
       Printf.eprintf, Format.printf, ...) inside lib/server or \
       lib/parallel. These layers run across domains and inside a daemon: \
       bare writes interleave bytes under contention, ignore the \
       operator's --log-level / --log-json configuration, and on stdout \
       corrupt machine-readable front-end output. Log through Obs.Log \
       (debug/info/warn/error with structured fields); the loop and the \
       pool flush the per-domain buffers at well-defined points.";
    check =
      (fun ctx structure ->
        if
          List.exists
            (fun scope -> contains_sub ~sub:scope ctx.display)
            obs02_scopes
        then begin
          let open Ast_iterator in
          let super = default_iterator in
          let expr it e =
            (match e.pexp_desc with
            | Pexp_ident _ -> (
                match path_of_expr e with
                | Some path -> (
                    match
                      List.find_opt (fun (p, _) -> p = path) console_writers
                    with
                    | Some (_, name) ->
                        report ctx ~loc:e.pexp_loc ~rule:"OBS02"
                          (Printf.sprintf
                             "`%s` writes to the console directly from the \
                              daemon/pool layer, bypassing the per-domain \
                              log buffers and the operator's log \
                              configuration; use Obs.Log.debug/info/warn/\
                              error with structured fields instead"
                             name)
                    | None -> ())
                | None -> ())
            | _ -> ());
            super.expr it e
          in
          let it = { super with expr } in
          it.structure it structure
        end);
  }

let () =
  List.iter register
    [
      para01; poly01; partial01; cmp01; csr01; csr02; alloc01; obs01; srv01;
      obs02;
    ]
