(* Suppression of lint findings.

   Two mechanisms, both scoped and explicit:

   - Comments: [(* lint: allow RULE1 RULE2 *)] silences the named rules on
     the comment's own line(s) and on the line immediately after the
     comment — so both a trailing comment and a comment placed just above
     the offending expression work.

   - Attributes: [[@lint.allow "RULE"]] on an expression,
     [[@@lint.allow "RULE"]] on a structure item or value binding, and
     [[@@@lint.allow "RULE"]] floating at the top of a file silence the
     named rules over the attached node's whole source span (the floating
     form covers the rest of the file).  Several rules may be given in one
     string, separated by spaces or commas.

   Suppressions are collected as line spans and applied as a post-filter
   over the diagnostics, which keeps rule implementations oblivious to
   them. *)

open Parsetree

type span = { from_line : int; to_line : int; rules : string list }

let parse_rule_list s =
  String.split_on_char ' ' (String.map (fun c -> if c = ',' then ' ' else c) s)
  |> List.filter (fun tok -> tok <> "")

let looks_like_rule_id tok =
  String.length tok > 0
  && String.for_all (fun c -> (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')) tok

let find_sub ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

(* Recognise a "lint: allow RULE..." directive anywhere in a comment body
   (so a justification and the directive can share one comment).  Rule ids
   are the uppercase-alphanumeric tokens following "allow", up to the
   first token that does not look like one. *)
let parse_comment_body body =
  match find_sub ~sub:"lint:" body with
  | None -> None
  | Some i ->
      let rest =
        String.trim (String.sub body (i + 5) (String.length body - i - 5))
      in
      let allow = "allow" in
      if String.length rest >= String.length allow
         && String.sub rest 0 (String.length allow) = allow
      then
        let rules =
          parse_rule_list
            (String.sub rest (String.length allow)
               (String.length rest - String.length allow))
        in
        let rec take = function
          | tok :: rest when looks_like_rule_id tok -> tok :: take rest
          | _ -> []
        in
        Some (take rules)
      else None

(* Scan raw source text for lint-directive comments.  A tiny hand-rolled
   scanner (tracking strings and nested comments) is more robust here than
   re-entering the compiler's lexer for its comment side channel. *)
let scan_comments src =
  let n = String.length src in
  let spans = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let bump c = if c = '\n' then incr line in
  while !i < n do
    let c = src.[!i] in
    if c = '"' then begin
      (* Skip string literal. *)
      incr i;
      let in_str = ref true in
      while !in_str && !i < n do
        (match src.[!i] with
        | '\\' -> if !i + 1 < n then begin bump src.[!i + 1]; incr i end
        | '"' -> in_str := false
        | c -> bump c);
        incr i
      done
    end
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      let start_line = !line in
      let buf = Buffer.create 64 in
      i := !i + 2;
      let depth = ref 1 in
      while !depth > 0 && !i < n do
        if src.[!i] = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
          incr depth;
          Buffer.add_string buf "(*";
          i := !i + 2
        end
        else if src.[!i] = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
          decr depth;
          if !depth > 0 then Buffer.add_string buf "*)";
          i := !i + 2
        end
        else begin
          bump src.[!i];
          Buffer.add_char buf src.[!i];
          incr i
        end
      done;
      match parse_comment_body (Buffer.contents buf) with
      | Some rules when rules <> [] ->
          (* Cover the comment itself plus the following line. *)
          spans := { from_line = start_line; to_line = !line + 1; rules } :: !spans
      | _ -> ()
    end
    else begin
      bump c;
      incr i
    end
  done;
  !spans

(* ------------------------------------------------------------------ *)
(* Attribute spans *)

let rules_of_attribute (attr : attribute) =
  if attr.attr_name.txt <> "lint.allow" then None
  else
    match attr.attr_payload with
    | PStr
        [
          {
            pstr_desc =
              Pstr_eval
                ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
            _;
          };
        ] ->
        Some (parse_rule_list s)
    | _ -> Some []  (* malformed payload: suppress nothing, but accept *)

let span_of_loc (loc : Location.t) rules =
  {
    from_line = loc.loc_start.pos_lnum;
    to_line = loc.loc_end.pos_lnum;
    rules;
  }

let collect_attribute_spans structure =
  let spans = ref [] in
  let add loc attrs =
    List.iter
      (fun attr ->
        match rules_of_attribute attr with
        | Some rules when rules <> [] -> spans := span_of_loc loc rules :: !spans
        | _ -> ())
      attrs
  in
  let open Ast_iterator in
  let super = default_iterator in
  let expr it e =
    add e.pexp_loc e.pexp_attributes;
    super.expr it e
  in
  let value_binding it vb =
    add vb.pvb_loc vb.pvb_attributes;
    super.value_binding it vb
  in
  let structure_item it si =
    (match si.pstr_desc with
    | Pstr_attribute attr -> (
        (* Floating attribute: covers the rest of the file. *)
        match rules_of_attribute attr with
        | Some rules when rules <> [] ->
            spans :=
              { from_line = si.pstr_loc.loc_start.pos_lnum;
                to_line = max_int; rules }
              :: !spans
        | _ -> ())
    | Pstr_eval (_, attrs) -> add si.pstr_loc attrs
    | _ -> ());
    super.structure_item it si
  in
  let it = { super with expr; value_binding; structure_item } in
  it.structure it structure;
  !spans

let suppressed spans (d : Lint_diag.t) =
  List.exists
    (fun s ->
      d.Lint_diag.line >= s.from_line
      && d.Lint_diag.line <= s.to_line
      && List.mem d.Lint_diag.rule s.rules)
    spans

let filter spans diags = List.filter (fun d -> not (suppressed spans d)) diags
