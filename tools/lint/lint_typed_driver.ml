(* Driver for the typed (whole-program) tier.

   Loads compilation units (cmt files, directories scanned for cmts, or
   standalone .ml files typechecked in-process), builds the program
   representation once, runs the typed rules over it, and — so the two
   tiers share one entry point and one deduplicated report — also runs
   the syntactic rules over each unit whose source is readable.

   Suppression works exactly as in the syntactic tier: `lint: allow`
   comments are scanned from the unit's source, and [@lint.allow]
   attributes are collected from the Typedtree (the typed analogue of the
   parsetree collector). *)

let typed_attribute_spans (u : Lint_cmt.unit_info) =
  let spans = ref [] in
  let add loc (attrs : Parsetree.attributes) =
    List.iter
      (fun attr ->
        match Lint_suppress.rules_of_attribute attr with
        | Some rules when rules <> [] ->
            spans := Lint_suppress.span_of_loc loc rules :: !spans
        | _ -> ())
      attrs
  in
  let open Tast_iterator in
  let super = default_iterator in
  let expr it (e : Typedtree.expression) =
    add e.exp_loc e.exp_attributes;
    super.expr it e
  in
  let value_binding it (vb : Typedtree.value_binding) =
    add vb.vb_loc vb.vb_attributes;
    super.value_binding it vb
  in
  let structure_item it (si : Typedtree.structure_item) =
    (match si.str_desc with
    | Typedtree.Tstr_attribute attr -> (
        match Lint_suppress.rules_of_attribute attr with
        | Some rules when rules <> [] ->
            spans :=
              {
                Lint_suppress.from_line = si.str_loc.loc_start.pos_lnum;
                to_line = max_int;
                rules;
              }
              :: !spans
        | _ -> ())
    | _ -> ());
    super.structure_item it si
  in
  let it = { super with expr; value_binding; structure_item } in
  it.structure it u.str;
  !spans

(* Classify and load the given inputs: a directory is scanned recursively
   for .cmt files, a .cmt is read, a .ml is typechecked in-process.
   Units are deduplicated by module name, first occurrence wins. *)
let load_units ~prefix paths =
  let units = ref [] and errors = ref [] in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let add = function
    | Ok (u : Lint_cmt.unit_info) ->
        if not (Hashtbl.mem seen u.modname) then begin
          Hashtbl.replace seen u.modname ();
          units := u :: !units
        end
    | Error e -> errors := e :: !errors
  in
  List.iter
    (fun path ->
      if Sys.file_exists path && Sys.is_directory path then
        List.iter
          (fun c -> add (Lint_cmt.load_cmt ~prefix c))
          (Lint_cmt.collect_cmts path)
      else if Filename.check_suffix path ".cmt" then
        add (Lint_cmt.load_cmt ~prefix path)
      else if Filename.check_suffix path ".ml" then
        add (Lint_cmt.typecheck_ml ~prefix path)
      else
        errors := (path ^ ": expected a directory, .cmt or .ml file") :: !errors)
    paths;
  (List.rev !units, List.rev !errors)

let analyze ?(only = []) ?(prefix = "") ?(syntactic = true) paths =
  let units, load_errors = load_units ~prefix paths in
  let prog = Lint_program.build units in
  let ctx = { Lint_typed_rules.prog; diags = [] } in
  List.iter
    (fun (r : Lint_typed_rules.rule) ->
      if Lint_driver.rule_enabled only r.id then r.check ctx)
    (Lint_typed_rules.all_rules ());
  (* Apply each unit's suppression spans to the typed findings reported
     against it. *)
  let typed_diags =
    List.concat_map
      (fun (u : Lint_cmt.unit_info) ->
        let mine =
          List.filter
            (fun d -> d.Lint_diag.file = u.display)
            ctx.Lint_typed_rules.diags
        in
        if mine = [] then []
        else
          let spans =
            (match u.source_path with
            | Some p -> (
                match Lint_driver.read_file p with
                | src -> Lint_suppress.scan_comments src
                | exception Sys_error _ -> [])
            | None -> [])
            @ typed_attribute_spans u
          in
          Lint_suppress.filter spans mine)
      units
  in
  let syntactic_result =
    if syntactic then
      List.fold_left
        (fun acc (u : Lint_cmt.unit_info) ->
          match u.source_path with
          | Some p ->
              Lint_driver.merge acc
                (Lint_driver.lint_file ~only ~display:u.display p)
          | None -> acc)
        Lint_driver.empty units
    else Lint_driver.empty
  in
  {
    Lint_driver.diags =
      Lint_diag.dedup_sort (typed_diags @ syntactic_result.Lint_driver.diags);
    errors = load_errors @ syntactic_result.Lint_driver.errors;
  }
