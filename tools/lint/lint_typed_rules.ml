(* Typed (whole-program) lint rules.

   These run over the [Lint_program] representation rather than a single
   parsetree, so they can follow facts across function and module
   boundaries: each rule computes per-definition summaries to a fixpoint
   over the call graph ([Lint_dataflow.fixpoint]), then walks definition
   bodies forward, threading an abstract state through approximate
   evaluation order with joins at branches.

   Shipped rules:

   - PARA02   interprocedural escape of mutable state into Pool closures:
              a parallel closure that mutates captured or global state
              through helper calls, aliases, or partial applications —
              the cases the syntactic PARA01 cannot see.
   - BOUNDS01 untrusted-read bounds: every [String.get_int64_le] /
              [get_int32_le] (and friends) must be dominated, within its
              function, by a length check that raises [Parse_error] —
              inline or via a checker helper such as [need] / [rd_i64].
   - ALLOC02  allocation (tuples, closures, boxing, allocating stdlib
              calls, transitively through helpers) reachable from a
              region marked [@lint.hot_loop].
   - SPAN01   [Obs.begin_span]/[end_span] pairing on all paths: branch
              arms must agree on the open-span count, loop bodies must be
              neutral, functions must exit balanced, and a raise must not
              cross an open span. *)

open Typedtree
module P = Lint_program

type ctx = { prog : P.t; mutable diags : Lint_diag.t list }

let report ctx ~file ~loc ~rule msg =
  ctx.diags <- Lint_diag.make ~file ~loc ~rule msg :: ctx.diags

type rule = { id : string; doc : string; check : ctx -> unit }

let line_of (loc : Location.t) = loc.loc_start.pos_lnum

(* Positional view of application arguments: labels are dropped, so a
   callee's parameter index is matched by position.  Call sites in this
   codebase pass labelled arguments in declaration order, which keeps the
   approximation honest. *)
let positional_args args =
  List.filter_map (fun (_, a) -> a) args

let fold_children f init e =
  let acc = ref init in
  P.iter_child_exprs (fun c -> acc := f !acc c) e;
  !acc

(* ================================================================== *)
(* PARA02: interprocedural escape of mutable state into Pool closures  *)

type mut_target = Mparam of int | Mglobal of string

(* A summary maps each thing a definition mutates (one of its parameters,
   or a global) to a human-readable witness of how. *)
type para_summary = (mut_target * string) list

let para_add acc target witness =
  if List.mem_assoc target acc then acc else (target, witness) :: acc

let para_equal a b =
  let keys l = List.sort compare (List.map fst l) in
  keys a = keys b

(* Derivation roots of an expression's value: the parameter indices it
   may alias.  Projections (fields, match bindings) propagate roots;
   function results are treated as fresh, so containers built from a
   parameter-sized [create] do not count as aliases of the parameter. *)
let rec roots_of roots e =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) ->
      Option.value (Hashtbl.find_opt roots (Ident.unique_name id)) ~default:[]
  | Texp_field (e', _, _) -> roots_of roots e'
  | Texp_ifthenelse (_, a, b) ->
      roots_of roots a
      @ (match b with Some b -> roots_of roots b | None -> [])
  | Texp_match (_, cases, _) ->
      List.concat_map (fun c -> roots_of roots c.c_rhs) cases
  | Texp_sequence (_, b) | Texp_let (_, _, b) -> roots_of roots b
  | Texp_tuple es | Texp_array es | Texp_construct (_, _, es) ->
      List.concat_map (roots_of roots) es
  | Texp_open (_, e') -> roots_of roots e'
  | _ -> []

let bind_roots roots rs pat =
  if rs <> [] then
    List.iter
      (fun id -> Hashtbl.replace roots (Ident.unique_name id) rs)
      (pat_bound_idents pat)

let para_witness_leaf what (d : P.def) loc =
  Printf.sprintf "%s at %s:%d" what d.unit_display (line_of loc)

(* Summary transfer: walk the definition's bodies tracking which locals
   alias which parameters, recording direct mutations and folding in
   callee summaries. *)
let para_transfer prog (d : P.def) ~get =
  let scope = P.scope_of prog d in
  let roots : (string, int list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (id, i) -> Hashtbl.replace roots (Ident.unique_name id) [ i ])
    d.params;
  let acc = ref [] in
  let record_target ~what ~loc target =
    let witness = para_witness_leaf what d loc in
    match target.exp_desc with
    | Texp_ident (p, _, _) -> (
        match P.resolve scope p with
        | Some g -> if not (P.sanctioned_callee g) then
            acc := para_add !acc (Mglobal g) witness
        | None ->
            List.iter
              (fun i -> acc := para_add !acc (Mparam i) witness)
              (roots_of roots target))
    | _ ->
        List.iter
          (fun i -> acc := para_add !acc (Mparam i) witness)
          (roots_of roots target)
  in
  let callee_summary name pos =
    match P.def_of prog name with
    | Some callee when not (P.exempt_unit callee) ->
        List.iter
          (fun (target, w) ->
            let witness = Printf.sprintf "via %s: %s" name w in
            match target with
            | Mglobal g -> acc := para_add !acc (Mglobal g) witness
            | Mparam j when j < List.length pos -> (
                let arg = List.nth pos j in
                match arg.exp_desc with
                | Texp_ident (p, _, _) when P.resolve scope p <> None ->
                    let g = Option.get (P.resolve scope p) in
                    if not (P.sanctioned_callee g) then
                      acc := para_add !acc (Mglobal g) witness
                | _ ->
                    List.iter
                      (fun i -> acc := para_add !acc (Mparam i) witness)
                      (roots_of roots arg))
            | Mparam _ -> ())
          (get name)
    | _ -> ()
  in
  let rec walk e =
    match e.exp_desc with
    | Texp_let (_, vbs, body) ->
        List.iter
          (fun vb ->
            walk vb.vb_expr;
            bind_roots roots (roots_of roots vb.vb_expr) vb.vb_pat)
          vbs;
        walk body
    | Texp_match (scrut, cases, _) ->
        walk scrut;
        let rs = roots_of roots scrut in
        List.iter
          (fun c ->
            bind_roots roots rs c.c_lhs;
            Option.iter walk c.c_guard;
            walk c.c_rhs)
          cases
    | Texp_setfield (target, _, lbl, v) ->
        record_target
          ~what:
            (Printf.sprintf "record-field write `%s <-`" lbl.Types.lbl_name)
          ~loc:e.exp_loc target;
        walk target;
        walk v
    | Texp_apply (f, args) ->
        walk f;
        List.iter (fun (_, a) -> Option.iter walk a) args;
        let pos = positional_args args in
        (match P.head_name scope f with
        | None -> ()
        | Some name ->
            (match (P.mutating_target name, pos) with
            | Some i, _ when i < List.length pos ->
                record_target
                  ~what:(Printf.sprintf "`%s`" (P.last2 name))
                  ~loc:e.exp_loc (List.nth pos i)
            | _ -> ());
            callee_summary name pos)
    | _ -> P.iter_child_exprs walk e
  in
  if not (P.exempt_unit d) then List.iter walk d.bodies;
  !acc

(* Origins a closure-local value may alias: names of captured variables
   or globals, for diagnostics.  Same propagation discipline as
   [roots_of]. *)
let rec origins_of scope locals origins e =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> (
      match p with
      | Path.Pident id when Hashtbl.mem locals (Ident.unique_name id) ->
          Option.value
            (Hashtbl.find_opt origins (Ident.unique_name id))
            ~default:[]
      | _ -> (
          match P.resolve scope p with
          | Some g -> if P.sanctioned_callee g then [] else [ g ]
          | None -> (
              match p with
              | Path.Pident id -> [ Ident.name id ]
              | _ -> [])))
  | Texp_field (e', _, _) -> origins_of scope locals origins e'
  | Texp_ifthenelse (_, a, b) ->
      origins_of scope locals origins a
      @ (match b with Some b -> origins_of scope locals origins b | None -> [])
  | Texp_match (_, cases, _) ->
      List.concat_map (fun c -> origins_of scope locals origins c.c_rhs) cases
  | Texp_sequence (_, b) | Texp_let (_, _, b) ->
      origins_of scope locals origins b
  | Texp_tuple es | Texp_array es | Texp_construct (_, _, es) ->
      List.concat_map (origins_of scope locals origins) es
  | Texp_open (_, e') -> origins_of scope locals origins e'
  | _ -> []

let para_flag ctx (d : P.def) ~loc origin witness =
  report ctx ~file:d.unit_display ~loc ~rule:"PARA02"
    (Printf.sprintf
       "parallel closure mutates shared state reachable from `%s` (%s); the \
        Pool contract allows only disjoint writes to shared arrays — use \
        Atomic / per-domain state, or suppress with `lint: allow PARA02` if \
        accesses are provably disjoint"
       origin witness)

(* Check one closure literal handed to a Pool entry point. *)
let para_check_closure ctx summaries (d : P.def) closure =
  let scope = P.scope_of ctx.prog d in
  let locals : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let origins : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  let add_locals pat =
    List.iter
      (fun id -> Hashtbl.replace locals (Ident.unique_name id) ())
      (pat_bound_idents pat)
  in
  let bind_origins os pat =
    if os <> [] then
      List.iter
        (fun id -> Hashtbl.replace origins (Ident.unique_name id) os)
        (pat_bound_idents pat)
  in
  let check_target ~what ~loc target =
    let os = origins_of scope locals origins target in
    match os with
    | [] -> ()
    | origin :: _ ->
        para_flag ctx d ~loc origin
          (Printf.sprintf "%s at %s:%d" what d.unit_display (line_of loc))
  in
  let summary_of name =
    match Hashtbl.find_opt summaries name with Some s -> s | None -> []
  in
  let rec walk e =
    match e.exp_desc with
    | Texp_function { cases; _ } ->
        List.iter
          (fun c ->
            add_locals c.c_lhs;
            Option.iter walk c.c_guard;
            walk c.c_rhs)
          cases
    | Texp_let (_, vbs, body) ->
        List.iter
          (fun vb ->
            walk vb.vb_expr;
            bind_origins (origins_of scope locals origins vb.vb_expr) vb.vb_pat;
            add_locals vb.vb_pat)
          vbs;
        walk body
    | Texp_match (scrut, cases, _) ->
        walk scrut;
        let os = origins_of scope locals origins scrut in
        List.iter
          (fun c ->
            bind_origins os c.c_lhs;
            add_locals c.c_lhs;
            Option.iter walk c.c_guard;
            walk c.c_rhs)
          cases
    | Texp_for (id, _, a, b, _, body) ->
        Hashtbl.replace locals (Ident.unique_name id) ();
        walk a;
        walk b;
        walk body
    | Texp_setfield (target, _, lbl, v) ->
        check_target
          ~what:
            (Printf.sprintf "record-field write `%s <-`" lbl.Types.lbl_name)
          ~loc:e.exp_loc target;
        walk target;
        walk v
    | Texp_apply (f, args) ->
        walk f;
        List.iter (fun (_, a) -> Option.iter walk a) args;
        let pos = positional_args args in
        (match P.head_name scope f with
        | None -> ()
        | Some name -> (
            (match (P.mutating_target name, pos) with
            | Some i, _ when i < List.length pos ->
                check_target
                  ~what:(Printf.sprintf "`%s`" (P.last2 name))
                  ~loc:e.exp_loc (List.nth pos i)
            | _ -> ());
            match P.def_of ctx.prog name with
            | Some callee when not (P.exempt_unit callee) ->
                List.iter
                  (fun (target, w) ->
                    match target with
                    | Mglobal g ->
                        para_flag ctx d ~loc:e.exp_loc g
                          (Printf.sprintf "via %s: %s" name w)
                    | Mparam j when j < List.length pos -> (
                        let arg = List.nth pos j in
                        match origins_of scope locals origins arg with
                        | origin :: _ ->
                            para_flag ctx d ~loc:e.exp_loc origin
                              (Printf.sprintf "via %s: %s" name w)
                        | [] -> ())
                    | Mparam _ -> ())
                  (summary_of name)
            | _ -> ()))
    | _ -> P.iter_child_exprs walk e
  in
  walk closure

(* Check a non-closure argument (bare function, partial application): the
   argument is evaluated once, so anything it closes over — including the
   values already applied — is shared across all iterations. *)
let para_check_fn_arg ctx summaries (d : P.def) arg =
  let scope = P.scope_of ctx.prog d in
  let is_function e =
    match Types.get_desc e.exp_type with
    | Types.Tarrow _ -> true
    | _ -> false
  in
  if is_function arg then begin
    let head, applied =
      match arg.exp_desc with
      | Texp_apply (f, args) -> (f, positional_args args)
      | _ -> (arg, [])
    in
    match P.head_name scope head with
    | Some name when P.def_of ctx.prog name <> None -> (
        match Hashtbl.find_opt summaries name with
        | Some summary ->
            List.iter
              (fun (target, w) ->
                match target with
                | Mglobal g ->
                    para_flag ctx d ~loc:arg.exp_loc g
                      (Printf.sprintf "via %s: %s" name w)
                | Mparam j when j < List.length applied ->
                    para_flag ctx d ~loc:arg.exp_loc
                      (Printf.sprintf "%s (argument %d of %s)"
                         "partially applied value" j name)
                      (Printf.sprintf
                         "the value is bound once and shared by every \
                          iteration; via %s: %s"
                         name w)
                | Mparam _ -> ())
              summary
        | None -> ())
    | _ -> ()
  end

let para02 =
  {
    id = "PARA02";
    doc =
      "Interprocedural escape of mutable state into Pool.parallel_for / \
       parallel_map closures: mutation of captured or global state through \
       helper functions, aliases (let-bound projections of captured \
       values), or partial applications. Computed from per-function \
       mutation summaries over the whole-program call graph; Atomic / \
       Mutex / per-domain Obs state is sanctioned.";
    check =
      (fun ctx ->
        let summaries =
          Lint_dataflow.fixpoint ~keys:(P.def_keys ctx.prog)
            ~deps:(fun k -> P.callees ctx.prog k)
            ~init:(fun _ -> [])
            ~transfer:(fun k ~get ->
              match P.def_of ctx.prog k with
              | Some d -> para_transfer ctx.prog d ~get
              | None -> [])
            ~equal:para_equal
        in
        P.iter_defs ctx.prog (fun d ->
            let scope = P.scope_of ctx.prog d in
            List.iter
              (P.iter_expr_deep (fun e ->
                   match e.exp_desc with
                   | Texp_apply (f, args) -> (
                       match P.head_name scope f with
                       | Some n when P.is_pool_entry n ->
                           List.iter
                             (fun (_, a) ->
                               match a with
                               | Some ({ exp_desc = Texp_function _; _ } as c)
                                 ->
                                   para_check_closure ctx summaries d c
                               | Some a -> para_check_fn_arg ctx summaries d a
                               | None -> ())
                             args
                       | _ -> ())
                   | _ -> ()))
              d.bodies));
  }

(* ================================================================== *)
(* BOUNDS01: untrusted reads must be dominated by a length check       *)

let read_fns =
  List.concat_map
    (fun m ->
      List.concat_map
        (fun sz ->
          List.map
            (fun e -> Printf.sprintf "%s.get_%s_%s" m sz e)
            [ "le"; "be"; "ne" ])
        [ "int16"; "uint16"; "int32"; "int64" ])
    [ "String"; "Bytes" ]

let is_read_fn name = List.mem (P.normalize name) read_fns

let mentions_length scope e =
  P.exists_expr
    (fun e ->
      match e.exp_desc with
      | Texp_ident (p, _, _) -> (
          match P.resolve scope p with
          | Some n ->
              let n = P.last2 n in
              n = "String.length" || n = "Bytes.length"
          | None -> false)
      | _ -> false)
    e

(* Summary: (raises Parse_error, is a checker).  A definition raises
   Parse_error when its body constructs that exception (directly or via a
   callee); it is a checker when it contains an [if] whose condition
   consults the input length and whose branch raises Parse_error. *)
let bounds_transfer prog (d : P.def) ~get =
  let scope = P.scope_of prog d in
  let mentions_pe e =
    P.exists_expr
      (fun e ->
        match e.exp_desc with
        | Texp_construct (_, cd, _) -> cd.Types.cstr_name = "Parse_error"
        | Texp_ident (p, _, _) -> (
            match P.resolve scope p with
            | Some n -> fst (get n)
            | None -> false)
        | _ -> false)
      e
  in
  let raises_pe = List.exists mentions_pe d.bodies in
  let checker =
    List.exists
      (P.exists_expr (fun e ->
           match e.exp_desc with
           | Texp_ifthenelse (c, t, eo) ->
               mentions_length scope c
               && (mentions_pe t
                  || match eo with Some e -> mentions_pe e | None -> false)
           | _ -> false))
      d.bodies
  in
  (raises_pe, checker)

let bounds_check ctx summaries (d : P.def) =
  let scope = P.scope_of ctx.prog d in
  let raises_pe name =
    match Hashtbl.find_opt summaries name with
    | Some (r, _) -> r
    | None -> false
  in
  let is_checker name =
    match Hashtbl.find_opt summaries name with
    | Some (_, c) -> c
    | None -> false
  in
  let branch_raises e =
    P.exists_expr
      (fun e ->
        match e.exp_desc with
        | Texp_construct (_, cd, _) -> cd.Types.cstr_name = "Parse_error"
        | Texp_ident (p, _, _) -> (
            match P.resolve scope p with
            | Some n -> raises_pe n
            | None -> false)
        | _ -> false)
      e
  in
  (* Forward walk with a monotone "a dominating length check has been
     seen in this function" flag: established by an [if] whose condition
     consults the length and whose branch raises Parse_error, or by a
     call to a checker helper. *)
  let rec go g e =
    match e.exp_desc with
    | Texp_ifthenelse (c, t, eo) ->
        let gc = go g c in
        let cond_len = mentions_length scope c in
        let gb = gc || cond_len in
        ignore (go gb t);
        Option.iter (fun e -> ignore (go gb e)) eo;
        gc
        || cond_len
           && (branch_raises t
              || match eo with Some e -> branch_raises e | None -> false)
    | Texp_match (scrut, cases, _) ->
        let g0 = go g scrut in
        List.iter
          (fun c ->
            Option.iter (fun gd -> ignore (go g0 gd)) c.c_guard;
            ignore (go g0 c.c_rhs))
          cases;
        g0
    | Texp_try (body, handlers) ->
        ignore (go g body);
        List.iter (fun c -> ignore (go g c.c_rhs)) handlers;
        g
    | Texp_while (c, body) ->
        let gc = go g c in
        ignore (go gc body);
        gc
    | Texp_for (_, _, a, b, _, body) ->
        let g' = go (go g a) b in
        ignore (go g' body);
        g'
    | Texp_function { cases; _ } ->
        (* Closures inherit the state at their creation point: the
           [Array.init]-under-guard idiom of the io readers. *)
        List.iter (fun c -> ignore (go g c.c_rhs)) cases;
        g
    | Texp_apply (f, args) ->
        let g' =
          List.fold_left
            (fun g (_, a) -> match a with Some a -> go g a | None -> g)
            (go g f) args
        in
        (match P.head_name scope f with
        | Some name when is_read_fn name ->
            if not g then
              report ctx ~file:d.unit_display ~loc:e.exp_loc ~rule:"BOUNDS01"
                (Printf.sprintf
                   "`%s` reads untrusted bytes with no dominating bounds \
                    check in this function; compare against String.length \
                    and raise Parse_error (directly or via a checker helper \
                    like `need`) before the read"
                   (P.normalize name));
            g'
        | Some name when is_checker name -> true
        | _ -> g')
    | _ -> fold_children go g e
  in
  List.iter (fun b -> ignore (go false b)) d.bodies

let bounds01 =
  {
    id = "BOUNDS01";
    doc =
      "Untrusted-read bounds in binary snapshot parsers: every \
       String/Bytes get_int64_le / get_int32_le / get_int16_le read must \
       be dominated, within its function, by a length check that raises \
       Parse_error — an inline `if ... > String.length s then bad ...` or \
       a call to a checker helper (`need`, `rd_i64`, ...). Checker status \
       is computed interprocedurally, so helper-based parsers are \
       understood.";
    check =
      (fun ctx ->
        let summaries =
          Lint_dataflow.fixpoint ~keys:(P.def_keys ctx.prog)
            ~deps:(fun k -> P.callees ctx.prog k)
            ~init:(fun _ -> (false, false))
            ~transfer:(fun k ~get ->
              match P.def_of ctx.prog k with
              | Some d -> bounds_transfer ctx.prog d ~get
              | None -> (false, false))
            ~equal:( = )
        in
        P.iter_defs ctx.prog (fun d -> bounds_check ctx summaries d));
  }

(* ================================================================== *)
(* ALLOC02: allocation reachable from [@lint.hot_loop] regions         *)

(* Stdlib entry points that allocate on every call: container builders,
   list/array transformers, string builders, boxed-integer and float
   conversions, printf. *)
let allocator_exact =
  [
    "Array.make"; "Array.init"; "Array.copy"; "Array.append"; "Array.concat";
    "Array.sub"; "Array.of_list"; "Array.to_list"; "Array.map"; "Array.mapi";
    "Array.map2"; "Array.of_seq"; "Array.to_seq"; "Array.split";
    "Array.combine"; "Array.make_matrix";
    "List.map"; "List.mapi"; "List.init"; "List.rev"; "List.append";
    "List.concat"; "List.concat_map"; "List.filter"; "List.filter_map";
    "List.sort"; "List.stable_sort"; "List.fast_sort"; "List.sort_uniq";
    "List.rev_map"; "List.rev_append"; "List.of_seq"; "List.to_seq";
    "List.split"; "List.combine"; "List.merge"; "List.flatten"; "List.cons";
    "String.make"; "String.init"; "String.sub"; "String.concat"; "String.cat";
    "String.split_on_char"; "String.trim"; "String.escaped";
    "String.uppercase_ascii"; "String.lowercase_ascii";
    "String.capitalize_ascii"; "String.of_bytes"; "String.to_bytes";
    "Bytes.create"; "Bytes.make"; "Bytes.init"; "Bytes.copy"; "Bytes.sub";
    "Bytes.of_string"; "Bytes.to_string"; "Bytes.extend"; "Bytes.cat";
    "Option.some"; "Option.map"; "Option.bind";
    "ref"; "^"; "@"; "float_of_int"; "float_of_string"; "string_of_int";
    "string_of_float"; "float_of_string_opt"; "int_of_string_opt";
  ]

let boxed_int_module m = m = "Int64" || m = "Int32" || m = "Nativeint"

let nonallocating_boxed_fn =
  [ "to_int"; "unsigned_to_int"; "compare"; "equal"; "unsigned_compare" ]

let container_allocating_fn =
  [
    "create"; "copy"; "add"; "push"; "replace"; "remove"; "of_seq"; "to_seq";
    "add_char"; "add_string"; "add_bytes"; "add_substring"; "add_buffer";
    "contents"; "to_bytes"; "add_seq"; "replace_seq";
  ]

let allocating_external name =
  let name = P.normalize name in
  List.mem name allocator_exact
  ||
  match List.rev (P.split_name name) with
  | fn :: m :: _ when boxed_int_module m -> not (List.mem fn nonallocating_boxed_fn)
  | fn :: m :: _ when m = "Float" -> not (List.mem fn [ "to_int"; "compare"; "equal"; "is_nan" ])
  | _ :: m :: _ when m = "Printf" || m = "Format" || m = "Seq" -> true
  | fn :: m :: _ when P.mutating_container m ->
      List.mem fn container_allocating_fn
  | _ -> false

let alloc_witness_of_construct e =
  match e.exp_desc with
  | Texp_function _ -> Some "closure allocation"
  | Texp_tuple _ -> Some "tuple construction"
  | Texp_record _ -> Some "record construction"
  | Texp_construct (_, cd, args) when args <> [] ->
      Some (Printf.sprintf "`%s` constructor allocation" cd.Types.cstr_name)
  | Texp_array (_ :: _) -> Some "array literal allocation"
  | Texp_lazy _ -> Some "lazy thunk allocation"
  | _ -> None

let is_raise_apply scope e =
  match e.exp_desc with
  | Texp_apply (f, _) -> (
      match P.head_name scope f with
      | Some n -> P.is_raise_name (P.normalize n)
      | None -> false)
  | Texp_assert _ -> true
  | _ -> false

(* Does executing this (already-stripped) body allocate?  Error paths
   (always-raising applications) and metrics-gated branches are skipped:
   raising is already the slow path, and [if Obs.metrics_on () then ...]
   only runs with observability switched on. *)
let alloc_scan prog scope ~get bodies =
  let found = ref None in
  let note w = if !found = None then found := Some w in
  let rec walk e =
    if !found = None then begin
      if is_raise_apply scope e then ()
      else
        match alloc_witness_of_construct e with
        | Some w -> note (Printf.sprintf "%s at line %d" w (line_of e.exp_loc))
        | None -> (
            match e.exp_desc with
            | Texp_ifthenelse (c, t, eo) ->
                if P.is_metrics_gate scope c then Option.iter walk eo
                else begin
                  walk c;
                  walk t;
                  Option.iter walk eo
                end
            | Texp_apply (f, args) ->
                walk f;
                List.iter (fun (_, a) -> Option.iter walk a) args;
                if !found = None then (
                  match P.head_name scope f with
                  | Some name when P.sanctioned_callee name -> ()
                  | Some name when allocating_external name ->
                      note
                        (Printf.sprintf "call to `%s` (allocates) at line %d"
                           (P.normalize name) (line_of e.exp_loc))
                  | Some name when P.def_of prog name <> None -> (
                      match get name with
                      | Some w ->
                          note (Printf.sprintf "via %s: %s" name w)
                      | None -> ())
                  | _ -> ())
            | _ -> P.iter_child_exprs walk e)
    end
  in
  List.iter walk bodies;
  !found

let alloc_transfer prog (d : P.def) ~get =
  if P.exempt_unit d then None
  else alloc_scan prog (P.scope_of prog d) ~get d.bodies

(* Report every allocation inside a marked region.  Local helper
   functions defined in the enclosing definition (outside the region) are
   analyzed through [local_fns]; module-level callees through the global
   summaries. *)
let alloc_check ctx summaries (d : P.def) =
  let scope = P.scope_of ctx.prog d in
  let local_fns : (string, expression) Hashtbl.t = Hashtbl.create 16 in
  let local_summary_cache : (string, string option) Hashtbl.t =
    Hashtbl.create 16
  in
  let get_global name = Hashtbl.find_opt summaries name |> Option.join in
  let local_summary uname =
    match Hashtbl.find_opt local_summary_cache uname with
    | Some s -> s
    | None ->
        (* Break self-recursion before descending. *)
        Hashtbl.replace local_summary_cache uname None;
        let s =
          match Hashtbl.find_opt local_fns uname with
          | Some rhs ->
              let _, _, bodies = P.split_params rhs in
              alloc_scan ctx.prog scope
                ~get:(fun n -> get_global n)
                bodies
          | None -> None
        in
        Hashtbl.replace local_summary_cache uname s;
        s
  in
  let flag ~loc w =
    report ctx ~file:d.unit_display ~loc ~rule:"ALLOC02"
      (Printf.sprintf
         "allocation in a [@lint.hot_loop] region: %s; hot loops are \
          contractually allocation-free — hoist the allocation out of the \
          loop, use flat arrays / toplevel recursion, or suppress with \
          `lint: allow ALLOC02` with a justification"
         w)
  in
  let rec walk ~marked e =
    let marked = marked || P.has_attr P.hot_loop_attr e.exp_attributes in
    if marked then begin
      if is_raise_apply scope e then ()
      else begin
        (match alloc_witness_of_construct e with
        | Some w -> flag ~loc:e.exp_loc w
        | None -> ());
        match e.exp_desc with
        | Texp_ifthenelse (c, t, eo) ->
            if P.is_metrics_gate scope c then
              Option.iter (walk ~marked) eo
            else begin
              walk ~marked c;
              walk ~marked t;
              Option.iter (walk ~marked) eo
            end
        | Texp_apply (f, args) ->
            walk ~marked f;
            List.iter (fun (_, a) -> Option.iter (walk ~marked) a) args;
            (match P.head_name scope f with
            | Some name when P.sanctioned_callee name -> ()
            | Some name when allocating_external name ->
                flag ~loc:e.exp_loc
                  (Printf.sprintf "call to `%s` (allocates)"
                     (P.normalize name))
            | Some name when P.def_of ctx.prog name <> None -> (
                match get_global name with
                | Some w -> flag ~loc:e.exp_loc (Printf.sprintf "via %s: %s" name w)
                | None -> ())
            | Some _ | None -> (
                (* Local helper call: [f] is an unresolved ident bound in
                   this definition. *)
                match f.exp_desc with
                | Texp_ident (Path.Pident id, _, _) -> (
                    match local_summary (Ident.unique_name id) with
                    | Some w ->
                        flag ~loc:e.exp_loc
                          (Printf.sprintf "via local `%s`: %s" (Ident.name id)
                             w)
                    | None -> ())
                | _ -> ()))
        | Texp_let (_, vbs, body) ->
            List.iter
              (fun vb ->
                record_local vb;
                walk ~marked vb.vb_expr)
              vbs;
            walk ~marked body
        | _ -> P.iter_child_exprs (walk ~marked) e
      end
    end
    else
      match e.exp_desc with
      | Texp_let (_, vbs, body) ->
          List.iter
            (fun vb ->
              record_local vb;
              walk ~marked vb.vb_expr)
            vbs;
          walk ~marked body
      | _ -> P.iter_child_exprs (walk ~marked) e
  and record_local vb =
    match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
    | Tpat_var (id, _), Texp_function _ ->
        Hashtbl.replace local_fns (Ident.unique_name id) vb.vb_expr
    | _ -> ()
  in
  let def_marked = P.has_attr P.hot_loop_attr d.vb_attrs in
  List.iter (walk ~marked:def_marked) d.bodies

let alloc02 =
  {
    id = "ALLOC02";
    doc =
      "Allocation reachable from a region marked [@lint.hot_loop] (on a \
       binding or an expression): tuples, records, non-constant \
       constructors, closures, array literals, boxed int64/int32/float \
       conversions, allocating stdlib calls, and — transitively, through \
       per-function summaries over the call graph — any helper whose body \
       allocates. Error paths (raise/failwith/invalid_arg) and \
       metrics-gated branches (if Obs.metrics_on () then ...) are \
       exempt.";
    check =
      (fun ctx ->
        let summaries =
          Lint_dataflow.fixpoint ~keys:(P.def_keys ctx.prog)
            ~deps:(fun k -> P.callees ctx.prog k)
            ~init:(fun _ -> None)
            ~transfer:(fun k ~get ->
              match P.def_of ctx.prog k with
              | Some d -> alloc_transfer ctx.prog d ~get
              | None -> None)
            ~equal:(fun a b -> (a = None) = (b = None))
        in
        P.iter_defs ctx.prog (fun d -> alloc_check ctx summaries d));
  }

(* ================================================================== *)
(* SPAN01: Obs.begin_span / end_span pairing on all paths              *)

let span_kind scope f =
  match P.head_name scope f with
  | Some n -> (
      match P.last2 n with
      | "Obs.begin_span" -> `Begin
      | "Obs.end_span" -> `End
      | n' -> if P.is_raise_name (P.normalize n') || P.is_raise_name n' then `Raise else `Other)
  | None -> `Other

let rec always_raises scope e =
  match e.exp_desc with
  | Texp_apply (f, _) -> span_kind scope f = `Raise
  | Texp_sequence (a, b) -> always_raises scope a || always_raises scope b
  | Texp_let (_, _, b) -> always_raises scope b
  | Texp_match (_, cases, _) ->
      cases <> [] && List.for_all (fun c -> always_raises scope c.c_rhs) cases
  | Texp_ifthenelse (_, t, Some e) ->
      always_raises scope t && always_raises scope e
  | _ -> false

let span_check ctx (d : P.def) =
  let scope = P.scope_of ctx.prog d in
  let flag ~loc msg = report ctx ~file:d.unit_display ~loc ~rule:"SPAN01" msg in
  let join ~loc entry branches =
    (* Branches that always raise have no fall-through; the raise-with-
       open-span case is flagged at the raise itself. *)
    let outs =
      List.filter_map
        (fun (b, out) -> if always_raises scope b then None else Some out)
        branches
    in
    match outs with
    | [] -> entry
    | o :: rest ->
        if List.exists (fun o' -> o' <> o) rest then
          flag ~loc
            "span balance differs across branches: every branch must open \
             and close the same number of Obs spans";
        o
  in
  let rec go bal e =
    match e.exp_desc with
    | Texp_apply (f, args) -> (
        let bal =
          List.fold_left
            (fun b (_, a) -> match a with Some a -> go b a | None -> b)
            bal args
        in
        match span_kind scope f with
        | `Begin -> bal + 1
        | `End ->
            if bal <= 0 then begin
              flag ~loc:e.exp_loc
                "Obs.end_span without a matching begin_span on this path";
              0
            end
            else bal - 1
        | `Raise ->
            if bal > 0 then
              flag ~loc:e.exp_loc
                (Printf.sprintf
                   "raise crosses %d open Obs span(s): close the span before \
                    raising (or hoist the check above begin_span)"
                   bal);
            bal
        | `Other -> bal)
    | Texp_ifthenelse (c, t, eo) ->
        let b0 = go bal c in
        let bt = go b0 t in
        let branches =
          match eo with
          | Some e -> [ (t, bt); (e, go b0 e) ]
          | None -> [ (t, bt); (c, b0) ]
        in
        join ~loc:e.exp_loc b0 branches
    | Texp_match (scrut, cases, _) ->
        let b0 = go bal scrut in
        let branches =
          List.map
            (fun c ->
              Option.iter (fun g -> ignore (go b0 g)) c.c_guard;
              (c.c_rhs, go b0 c.c_rhs))
            cases
        in
        join ~loc:e.exp_loc b0 branches
    | Texp_try (body, handlers) ->
        let bb = go bal body in
        let branches =
          (body, bb)
          :: List.map (fun c -> (c.c_rhs, go bal c.c_rhs)) handlers
        in
        join ~loc:e.exp_loc bal branches
    | Texp_while (c, body) ->
        let bc = go bal c in
        let bout = go bc body in
        if bout <> bc then
          flag ~loc:e.exp_loc
            "loop body changes the open Obs span count: begin_span/end_span \
             inside a loop must pair within one iteration";
        bc
    | Texp_for (_, _, a, b, _, body) ->
        let b0 = go (go bal a) b in
        let bout = go b0 body in
        if bout <> b0 then
          flag ~loc:e.exp_loc
            "loop body changes the open Obs span count: begin_span/end_span \
             inside a loop must pair within one iteration";
        b0
    | Texp_function { cases; _ } ->
        List.iter
          (fun c ->
            Option.iter (fun g -> ignore (go 0 g)) c.c_guard;
            let out = go 0 c.c_rhs in
            if out <> 0 then
              flag ~loc:c.c_rhs.exp_loc
                (Printf.sprintf
                   "closure exits with %d unclosed Obs span(s): begin_span \
                    and end_span must pair lexically"
                   out))
          cases;
        bal
    | Texp_sequence (a, b) -> go (go bal a) b
    | Texp_let (_, vbs, body) ->
        let b0 =
          List.fold_left (fun b vb -> go b vb.vb_expr) bal vbs
        in
        go b0 body
    | _ -> fold_children go bal e
  in
  if not (P.contains_sub ~sub:"lib/obs" d.unit_display) then
    List.iter
      (fun body ->
        let out = go 0 body in
        if out <> 0 then
          flag ~loc:d.loc
            (Printf.sprintf
               "function exits with %d unclosed Obs span(s): begin_span and \
                end_span must pair lexically on every path"
               out))
      d.bodies

let span01 =
  {
    id = "SPAN01";
    doc =
      "Obs.begin_span / end_span pairing on all paths: branch arms must \
       leave the same number of spans open, loop bodies must be \
       span-neutral, functions and closures must exit balanced, and a \
       raise must not cross an open span (the exception edge would leak \
       it). Calls are assumed non-raising — wrap risky regions in \
       Obs.span instead.";
    check = (fun ctx -> P.iter_defs ctx.prog (fun d -> span_check ctx d));
  }

(* ================================================================== *)

let all_rules () =
  List.sort (fun a b -> String.compare a.id b.id)
    [ para02; bounds01; alloc02; span01 ]
