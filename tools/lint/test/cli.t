The CLI contract: exit 0 and no output on a clean tree, exit 1 with
file:line:col findings when violations exist.

  $ qpgc-lint --list-rules >/dev/null

A clean hot-path module:

  $ qpgc-lint --hot fixtures/clean.ml

A fully suppressed module (every violation carries an annotation):

  $ qpgc-lint --hot fixtures/suppressed.ml

Violations are reported as file:line:col: RULE message, exit code 1:

  $ qpgc-lint --hot fixtures/bad_partial01.ml
  fixtures/bad_partial01.ml:3:15: PARTIAL01 `List.hd` is partial and fails with a context-free exception; use a total match with a real error message
  fixtures/bad_partial01.ml:6:14: PARTIAL01 `List.tl` is partial and fails with a context-free exception; use a total match with a real error message
  fixtures/bad_partial01.ml:9:15: PARTIAL01 `List.nth` is partial and fails with a context-free exception; use a total match with a real error message
  fixtures/bad_partial01.ml:12:14: PARTIAL01 `Option.get` is partial and fails with a context-free exception; use a total match with a real error message
  qpgc-lint: 4 finding(s)
  [1]

PARA01 does not depend on the hot classification, and --rule restricts
the run to the named rules:

  $ qpgc-lint --cold --rule PARA01 fixtures/bad_para01.ml
  fixtures/bad_para01.ml:6:38: PARA01 `:=` mutates `total`, which is captured from outside this parallel closure; parallel bodies may only write disjoint indices of shared arrays (define the state inside the closure, or suppress with a `lint: allow PARA01` comment if access is provably disjoint)
  fixtures/bad_para01.ml:12:38: PARA01 `incr` mutates `hits`, which is captured from outside this parallel closure; parallel bodies may only write disjoint indices of shared arrays (define the state inside the closure, or suppress with a `lint: allow PARA01` comment if access is provably disjoint)
  fixtures/bad_para01.ml:18:38: PARA01 `Hashtbl.replace` mutates `seen`, which is captured from outside this parallel closure; parallel bodies may only write disjoint indices of shared arrays (define the state inside the closure, or suppress with a `lint: allow PARA01` comment if access is provably disjoint)
  fixtures/bad_para01.ml:25:6: PARA01 `Buffer.add_string` mutates `buf`, which is captured from outside this parallel closure; parallel bodies may only write disjoint indices of shared arrays (define the state inside the closure, or suppress with a `lint: allow PARA01` comment if access is provably disjoint)
  qpgc-lint: 4 finding(s)
  [1]

Hot-only rules stay quiet on cold files:

  $ qpgc-lint --cold fixtures/bad_poly01.ml

CSR01 is not hot-only -- the retired accessors are flagged in cold
modules (bin/, bench/) too:

  $ qpgc-lint --cold --rule CSR01 fixtures/bad_csr01.ml
  fixtures/bad_csr01.ml:3:12: CSR01 `Digraph.succ` materializes an adjacency array per call and is retired from the CSR core; use Digraph.iter_succ / fold_succ / succ_slice
  fixtures/bad_csr01.ml:6:12: CSR01 `Digraph.pred` materializes an adjacency array per call and is retired from the CSR core; use Digraph.iter_pred / fold_pred / pred_slice
  fixtures/bad_csr01.ml:9:12: CSR01 `Digraph.edges` materializes an adjacency array per call and is retired from the CSR core; use Digraph.iter_edges / fold_edges (or edge_array when random access is genuinely needed)
  fixtures/bad_csr01.ml:12:27: CSR01 `Digraph.succ` materializes an adjacency array per call and is retired from the CSR core; use Digraph.iter_succ / fold_succ / succ_slice
  qpgc-lint: 4 finding(s)
  [1]

JSON output for machine consumption:

  $ qpgc-lint --hot --format json fixtures/bad_cmp01.ml
  [{"file":"fixtures/bad_cmp01.ml","line":3,"col":15,"rule":"CMP01","message":"polymorphic `Hashtbl.create` in a hot-path module; use a keyed table with monomorphic hash/equal (Mono.Itbl, Mono.Ptbl, Mono.Stbl, or a local Hashtbl.Make)"}]
  qpgc-lint: 1 finding(s)
  [1]

ALLOC01 is scoped to lib/partition; --prefix places the fixture there:

  $ qpgc-lint --rule ALLOC01 --prefix lib/partition/ fixtures/bad_alloc01.ml
  lib/partition/fixtures/bad_alloc01.ml:3:17: ALLOC01 `Hashtbl.create` allocates a hash table inside lib/partition, the zero-allocation refinement substrate; keep tables out of refinement loops (flat arrays indexed by node / block / CSR edge position), or suppress with `lint: allow ALLOC01` for one-shot set-up or oracle code
  lib/partition/fixtures/bad_alloc01.ml:5:16: ALLOC01 `Itbl.create` allocates a hash table inside lib/partition, the zero-allocation refinement substrate; keep tables out of refinement loops (flat arrays indexed by node / block / CSR edge position), or suppress with `lint: allow ALLOC01` for one-shot set-up or oracle code
  lib/partition/fixtures/bad_alloc01.ml:7:17: ALLOC01 `Ptbl.create` allocates a hash table inside lib/partition, the zero-allocation refinement substrate; keep tables out of refinement loops (flat arrays indexed by node / block / CSR edge position), or suppress with `lint: allow ALLOC01` for one-shot set-up or oracle code
  lib/partition/fixtures/bad_alloc01.ml:9:18: ALLOC01 `Sig_tbl.create` allocates a hash table inside lib/partition, the zero-allocation refinement substrate; keep tables out of refinement loops (flat arrays indexed by node / block / CSR edge position), or suppress with `lint: allow ALLOC01` for one-shot set-up or oracle code
  qpgc-lint: 4 finding(s)
  [1]

The same file outside that directory is clean for ALLOC01:

  $ qpgc-lint --rule ALLOC01 --prefix lib/graph/ fixtures/bad_alloc01.ml

OBS01 forbids raw clocks everywhere except lib/obs; --prefix bin/ puts
the fixture in scope:

  $ qpgc-lint --cold --rule OBS01 --prefix bin/ fixtures/bad_obs01.ml
  bin/fixtures/bad_obs01.ml:3:13: OBS01 `Unix.gettimeofday` is a raw clock read outside lib/obs; time with Obs.time / Obs.Clock.now_ns (the monotonic clock) or wrap the region in Obs.span, so durations cannot go negative and all measurement shares one code path
  bin/fixtures/bad_obs01.ml:6:13: OBS01 `Sys.time` is a raw clock read outside lib/obs; time with Obs.time / Obs.Clock.now_ns (the monotonic clock) or wrap the region in Obs.span, so durations cannot go negative and all measurement shares one code path
  bin/fixtures/bad_obs01.ml:9:13: OBS01 `UnixLabels.gettimeofday` is a raw clock read outside lib/obs; time with Obs.time / Obs.Clock.now_ns (the monotonic clock) or wrap the region in Obs.span, so durations cannot go negative and all measurement shares one code path
  bin/fixtures/bad_obs01.ml:12:26: OBS01 `Unix.gettimeofday` is a raw clock read outside lib/obs; time with Obs.time / Obs.Clock.now_ns (the monotonic clock) or wrap the region in Obs.span, so durations cannot go negative and all measurement shares one code path
  qpgc-lint: 4 finding(s)
  [1]

The same file under lib/obs is exempt (that layer wraps the raw clock):

  $ qpgc-lint --cold --rule OBS01 --prefix lib/obs/ fixtures/bad_obs01.ml
