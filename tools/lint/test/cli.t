The CLI contract: exit 0 and no output on a clean tree, exit 1 with
file:line:col findings when violations exist.

  $ qpgc-lint --list-rules >/dev/null

A clean hot-path module:

  $ qpgc-lint --hot fixtures/clean.ml

A fully suppressed module (every violation carries an annotation):

  $ qpgc-lint --hot fixtures/suppressed.ml

Violations are reported as file:line:col: RULE message, exit code 1:

  $ qpgc-lint --hot fixtures/bad_partial01.ml
  fixtures/bad_partial01.ml:3:15: PARTIAL01 `List.hd` is partial and fails with a context-free exception; use a total match with a real error message
  fixtures/bad_partial01.ml:6:14: PARTIAL01 `List.tl` is partial and fails with a context-free exception; use a total match with a real error message
  fixtures/bad_partial01.ml:9:15: PARTIAL01 `List.nth` is partial and fails with a context-free exception; use a total match with a real error message
  fixtures/bad_partial01.ml:12:14: PARTIAL01 `Option.get` is partial and fails with a context-free exception; use a total match with a real error message
  fixtures/bad_partial01.ml:15:19: PARTIAL01 `Hashtbl.find` is partial and fails with a context-free exception; use a total match with a real error message
  fixtures/bad_partial01.ml:18:16: PARTIAL01 `List.find` is partial and fails with a context-free exception; use a total match with a real error message
  fixtures/bad_partial01.ml:21:12: PARTIAL01 `String.index` is partial and fails with a context-free exception; use a total match with a real error message
  qpgc-lint: 7 finding(s)
  [1]

PARA01 does not depend on the hot classification, and --rule restricts
the run to the named rules:

  $ qpgc-lint --cold --rule PARA01 fixtures/bad_para01.ml
  fixtures/bad_para01.ml:6:38: PARA01 `:=` mutates `total`, which is captured from outside this parallel closure; parallel bodies may only write disjoint indices of shared arrays (define the state inside the closure, or suppress with a `lint: allow PARA01` comment if access is provably disjoint)
  fixtures/bad_para01.ml:12:38: PARA01 `incr` mutates `hits`, which is captured from outside this parallel closure; parallel bodies may only write disjoint indices of shared arrays (define the state inside the closure, or suppress with a `lint: allow PARA01` comment if access is provably disjoint)
  fixtures/bad_para01.ml:18:38: PARA01 `Hashtbl.replace` mutates `seen`, which is captured from outside this parallel closure; parallel bodies may only write disjoint indices of shared arrays (define the state inside the closure, or suppress with a `lint: allow PARA01` comment if access is provably disjoint)
  fixtures/bad_para01.ml:25:6: PARA01 `Buffer.add_string` mutates `buf`, which is captured from outside this parallel closure; parallel bodies may only write disjoint indices of shared arrays (define the state inside the closure, or suppress with a `lint: allow PARA01` comment if access is provably disjoint)
  qpgc-lint: 4 finding(s)
  [1]

Hot-only rules stay quiet on cold files:

  $ qpgc-lint --cold fixtures/bad_poly01.ml

CSR01 is not hot-only -- the retired accessors are flagged in cold
modules (bin/, bench/) too:

  $ qpgc-lint --cold --rule CSR01 fixtures/bad_csr01.ml
  fixtures/bad_csr01.ml:3:12: CSR01 `Digraph.succ` materializes an adjacency array per call and is retired from the CSR core; use Digraph.iter_succ / fold_succ / succ_slice
  fixtures/bad_csr01.ml:6:12: CSR01 `Digraph.pred` materializes an adjacency array per call and is retired from the CSR core; use Digraph.iter_pred / fold_pred / pred_slice
  fixtures/bad_csr01.ml:9:12: CSR01 `Digraph.edges` materializes an adjacency array per call and is retired from the CSR core; use Digraph.iter_edges / fold_edges (or edge_array when random access is genuinely needed)
  fixtures/bad_csr01.ml:12:27: CSR01 `Digraph.succ` materializes an adjacency array per call and is retired from the CSR core; use Digraph.iter_succ / fold_succ / succ_slice
  qpgc-lint: 4 finding(s)
  [1]

CSR02 flags the dense CSR escape hatch (out_csr / in_csr) outside
lib/graph -- on the mapped and varint backends those calls force a full
heap copy; the suppressed call at the end of the fixture stays quiet:

  $ qpgc-lint --cold --rule CSR02 fixtures/bad_csr02.ml
  fixtures/bad_csr02.ml:3:21: CSR02 `Digraph.out_csr` materializes the dense CSR outside lib/graph, forcing a full heap copy on the mapped and varint backends; iterate with Digraph.iter_succ / fold_succ / succ_slice (or *_pred), or suppress with `lint: allow CSR02` where the dense arrays are genuinely required
  fixtures/bad_csr02.ml:6:26: CSR02 `Digraph.in_csr` materializes the dense CSR outside lib/graph, forcing a full heap copy on the mapped and varint backends; iterate with Digraph.iter_succ / fold_succ / succ_slice (or *_pred), or suppress with `lint: allow CSR02` where the dense arrays are genuinely required
  qpgc-lint: 2 finding(s)
  [1]

The same file under --prefix lib/graph/ is exempt -- the storage layer
owns the representation:

  $ qpgc-lint --rule CSR02 --prefix lib/graph/ fixtures/bad_csr02.ml

JSON output for machine consumption:

  $ qpgc-lint --hot --format json fixtures/bad_cmp01.ml
  [{"file":"fixtures/bad_cmp01.ml","line":3,"col":15,"rule":"CMP01","message":"polymorphic `Hashtbl.create` in a hot-path module; use a keyed table with monomorphic hash/equal (Mono.Itbl, Mono.Ptbl, Mono.Stbl, or a local Hashtbl.Make)"}]
  qpgc-lint: 1 finding(s)
  [1]

ALLOC01 is scoped to lib/partition; --prefix places the fixture there:

  $ qpgc-lint --rule ALLOC01 --prefix lib/partition/ fixtures/bad_alloc01.ml
  lib/partition/fixtures/bad_alloc01.ml:3:17: ALLOC01 `Hashtbl.create` allocates a hash table inside lib/partition, the zero-allocation refinement substrate; keep tables out of refinement loops (flat arrays indexed by node / block / CSR edge position), or suppress with `lint: allow ALLOC01` for one-shot set-up or oracle code
  lib/partition/fixtures/bad_alloc01.ml:5:16: ALLOC01 `Itbl.create` allocates a hash table inside lib/partition, the zero-allocation refinement substrate; keep tables out of refinement loops (flat arrays indexed by node / block / CSR edge position), or suppress with `lint: allow ALLOC01` for one-shot set-up or oracle code
  lib/partition/fixtures/bad_alloc01.ml:7:17: ALLOC01 `Ptbl.create` allocates a hash table inside lib/partition, the zero-allocation refinement substrate; keep tables out of refinement loops (flat arrays indexed by node / block / CSR edge position), or suppress with `lint: allow ALLOC01` for one-shot set-up or oracle code
  lib/partition/fixtures/bad_alloc01.ml:9:18: ALLOC01 `Sig_tbl.create` allocates a hash table inside lib/partition, the zero-allocation refinement substrate; keep tables out of refinement loops (flat arrays indexed by node / block / CSR edge position), or suppress with `lint: allow ALLOC01` for one-shot set-up or oracle code
  qpgc-lint: 4 finding(s)
  [1]

The same file outside that directory is clean for ALLOC01:

  $ qpgc-lint --rule ALLOC01 --prefix lib/graph/ fixtures/bad_alloc01.ml

OBS01 forbids raw clocks everywhere except lib/obs; --prefix bin/ puts
the fixture in scope:

  $ qpgc-lint --cold --rule OBS01 --prefix bin/ fixtures/bad_obs01.ml
  bin/fixtures/bad_obs01.ml:3:13: OBS01 `Unix.gettimeofday` is a raw clock read outside lib/obs; time with Obs.time / Obs.Clock.now_ns (the monotonic clock) or wrap the region in Obs.span, so durations cannot go negative and all measurement shares one code path
  bin/fixtures/bad_obs01.ml:6:13: OBS01 `Sys.time` is a raw clock read outside lib/obs; time with Obs.time / Obs.Clock.now_ns (the monotonic clock) or wrap the region in Obs.span, so durations cannot go negative and all measurement shares one code path
  bin/fixtures/bad_obs01.ml:9:13: OBS01 `UnixLabels.gettimeofday` is a raw clock read outside lib/obs; time with Obs.time / Obs.Clock.now_ns (the monotonic clock) or wrap the region in Obs.span, so durations cannot go negative and all measurement shares one code path
  bin/fixtures/bad_obs01.ml:12:26: OBS01 `Unix.gettimeofday` is a raw clock read outside lib/obs; time with Obs.time / Obs.Clock.now_ns (the monotonic clock) or wrap the region in Obs.span, so durations cannot go negative and all measurement shares one code path
  qpgc-lint: 4 finding(s)
  [1]

The same file under lib/obs is exempt (that layer wraps the raw clock):

  $ qpgc-lint --cold --rule OBS01 --prefix lib/obs/ fixtures/bad_obs01.ml

SRV01 forbids blocking sleeps and unbounded channel reads inside
lib/server, where one stalled call freezes every connection; --prefix
lib/server/ puts the fixture in scope:

  $ qpgc-lint --cold --rule SRV01 --prefix lib/server/ fixtures/bad_srv01.ml
  lib/server/fixtures/bad_srv01.ml:3:13: SRV01 `Unix.sleep` blocks the single-threaded serving loop, stalling every connection at once; use bounded Unix.read chunks driven by the frame length prefix and Unix.select timeouts, and move sleeps/retries into the callers
  lib/server/fixtures/bad_srv01.ml:6:14: SRV01 `Unix.sleepf` blocks the single-threaded serving loop, stalling every connection at once; use bounded Unix.read chunks driven by the frame length prefix and Unix.select timeouts, and move sleeps/retries into the callers
  lib/server/fixtures/bad_srv01.ml:9:15: SRV01 `Thread.delay` blocks the single-threaded serving loop, stalling every connection at once; use bounded Unix.read chunks driven by the frame length prefix and Unix.select timeouts, and move sleeps/retries into the callers
  lib/server/fixtures/bad_srv01.ml:12:17: SRV01 `really_input` blocks the single-threaded serving loop, stalling every connection at once; use bounded Unix.read chunks driven by the frame length prefix and Unix.select timeouts, and move sleeps/retries into the callers
  lib/server/fixtures/bad_srv01.ml:15:13: SRV01 `really_input_string` blocks the single-threaded serving loop, stalling every connection at once; use bounded Unix.read chunks driven by the frame length prefix and Unix.select timeouts, and move sleeps/retries into the callers
  lib/server/fixtures/bad_srv01.ml:18:14: SRV01 `input_line` blocks the single-threaded serving loop, stalling every connection at once; use bounded Unix.read chunks driven by the frame length prefix and Unix.select timeouts, and move sleeps/retries into the callers
  qpgc-lint: 6 finding(s)
  [1]

Outside lib/server the same file is clean -- callers are allowed to
sleep between retries:

  $ qpgc-lint --cold --rule SRV01 fixtures/bad_srv01.ml

OBS02 forbids direct console output inside lib/server and lib/parallel,
where diagnostics must go through the per-domain Obs.Log buffers;
--prefix lib/server/ puts the fixture in scope:

  $ qpgc-lint --cold --rule OBS02 --prefix lib/server/ fixtures/bad_obs02.ml
  lib/server/fixtures/bad_obs02.ml:3:16: OBS02 `print_string` writes to the console directly from the daemon/pool layer, bypassing the per-domain log buffers and the operator's log configuration; use Obs.Log.debug/info/warn/error with structured fields instead
  lib/server/fixtures/bad_obs02.ml:6:14: OBS02 `print_endline` writes to the console directly from the daemon/pool layer, bypassing the per-domain log buffers and the operator's log configuration; use Obs.Log.debug/info/warn/error with structured fields instead
  lib/server/fixtures/bad_obs02.ml:9:18: OBS02 `prerr_endline` writes to the console directly from the daemon/pool layer, bypassing the per-domain log buffers and the operator's log configuration; use Obs.Log.debug/info/warn/error with structured fields instead
  lib/server/fixtures/bad_obs02.ml:12:17: OBS02 `Printf.printf` writes to the console directly from the daemon/pool layer, bypassing the per-domain log buffers and the operator's log configuration; use Obs.Log.debug/info/warn/error with structured fields instead
  lib/server/fixtures/bad_obs02.ml:15:13: OBS02 `Printf.eprintf` writes to the console directly from the daemon/pool layer, bypassing the per-domain log buffers and the operator's log configuration; use Obs.Log.debug/info/warn/error with structured fields instead
  lib/server/fixtures/bad_obs02.ml:18:14: OBS02 `Format.printf` writes to the console directly from the daemon/pool layer, bypassing the per-domain log buffers and the operator's log configuration; use Obs.Log.debug/info/warn/error with structured fields instead
  qpgc-lint: 6 finding(s)
  [1]

The pool layer is covered by the same rule:

  $ qpgc-lint --cold --rule OBS02 --prefix lib/parallel/ fixtures/bad_obs02.ml 2>&1 | tail -n 1
  qpgc-lint: 6 finding(s)

Outside those layers the same file is clean -- front ends print freely:

  $ qpgc-lint --cold --rule OBS02 fixtures/bad_obs02.ml

The typed tier (--typed) typechecks standalone .ml inputs in-process and
runs the whole-program rules plus the syntactic ones.  PARA02 follows
mutation through helper calls and partial applications:

  $ qpgc-lint --typed --rule PARA02 fixtures/bad_para02.ml
  fixtures/bad_para02.ml:26:39: PARA02 parallel closure mutates shared state reachable from `counter` (via Bad_para02.bump: `incr` at fixtures/bad_para02.ml:21); the Pool contract allows only disjoint writes to shared arrays — use Atomic / per-domain state, or suppress with `lint: allow PARA02` if accesses are provably disjoint
  fixtures/bad_para02.ml:36:39: PARA02 parallel closure mutates shared state reachable from `Bad_para02.tally` (via Bad_para02.note: `:=` at fixtures/bad_para02.ml:32); the Pool contract allows only disjoint writes to shared arrays — use Atomic / per-domain state, or suppress with `lint: allow PARA02` if accesses are provably disjoint
  fixtures/bad_para02.ml:43:38: PARA02 parallel closure mutates shared state reachable from `state` (record-field write `cell <-` at fixtures/bad_para02.ml:43); the Pool contract allows only disjoint writes to shared arrays — use Atomic / per-domain state, or suppress with `lint: allow PARA02` if accesses are provably disjoint
  fixtures/bad_para02.ml:51:28: PARA02 parallel closure mutates shared state reachable from `partially applied value (argument 0 of Bad_para02.add_into)` (the value is bound once and shared by every iteration; via Bad_para02.add_into: `:=` at fixtures/bad_para02.ml:45); the Pool contract allows only disjoint writes to shared arrays — use Atomic / per-domain state, or suppress with `lint: allow PARA02` if accesses are provably disjoint
  qpgc-lint: 4 finding(s)
  [1]

BOUNDS01 demands a Parse_error-raising length check before binary reads:

  $ qpgc-lint --typed --rule BOUNDS01 fixtures/bad_bounds01.ml
  fixtures/bad_bounds01.ml:8:45: BOUNDS01 `String.get_int64_le` reads untrusted bytes with no dominating bounds check in this function; compare against String.length and raise Parse_error (directly or via a checker helper like `need`) before the read
  fixtures/bad_bounds01.ml:14:2: BOUNDS01 `String.get_int32_le` reads untrusted bytes with no dominating bounds check in this function; compare against String.length and raise Parse_error (directly or via a checker helper like `need`) before the read
  qpgc-lint: 2 finding(s)
  [1]

SPAN01 checks Obs span pairing on all paths, including exception edges:

  $ qpgc-lint --typed --rule SPAN01 fixtures/bad_span01.ml
  fixtures/bad_span01.ml:12:0: SPAN01 function exits with 1 unclosed Obs span(s): begin_span and end_span must pair lexically on every path
  fixtures/bad_span01.ml:19:2: SPAN01 span balance differs across branches: every branch must open and close the same number of Obs spans
  fixtures/bad_span01.ml:25:16: SPAN01 raise crosses 1 open Obs span(s): close the span before raising (or hoist the check above begin_span)
  fixtures/bad_span01.ml:33:2: SPAN01 loop body changes the open Obs span count: begin_span/end_span inside a loop must pair within one iteration
  qpgc-lint: 4 finding(s)
  [1]

Typed findings serialize to JSON like the syntactic tier, and a rule
with no findings yields an empty array:

  $ qpgc-lint --typed --rule BOUNDS01 --format json fixtures/bad_bounds01.ml
  [{"file":"fixtures/bad_bounds01.ml","line":8,"col":45,"rule":"BOUNDS01","message":"`String.get_int64_le` reads untrusted bytes with no dominating bounds check in this function; compare against String.length and raise Parse_error (directly or via a checker helper like `need`) before the read"},{"file":"fixtures/bad_bounds01.ml","line":14,"col":2,"rule":"BOUNDS01","message":"`String.get_int32_le` reads untrusted bytes with no dominating bounds check in this function; compare against String.length and raise Parse_error (directly or via a checker helper like `need`) before the read"}]
  qpgc-lint: 2 finding(s)
  [1]

  $ qpgc-lint --typed --rule ALLOC02 --format json fixtures/bad_bounds01.ml
  []

A fully suppressed unit is clean under --typed: comment directives and
[@lint.allow] attributes silence both tiers:

  $ qpgc-lint --typed fixtures/suppressed_typed.ml

The clean typed fixture stays clean under the full eleven-rule run:

  $ qpgc-lint --typed fixtures/clean_typed.ml

--list-rules names both tiers:

  $ qpgc-lint --list-rules | grep "typed tier"
  ALLOC02 (typed tier)
  BOUNDS01 (typed tier)
  PARA02 (typed tier)
  SPAN01 (typed tier)
