(* ALLOC01 fixture: linted with a display path under lib/partition. *)

let bad_poly n = Hashtbl.create n

let bad_int n = Mono.Itbl.create n

let bad_pair n = Mono.Ptbl.create (2 * n)

let bad_keyed n = Sig_tbl.create n

let ok_suppressed n = Mono.Itbl.create n (* lint: allow ALLOC01 *)

let ok_buffer n = Buffer.create n
