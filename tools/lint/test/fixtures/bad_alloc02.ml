(* ALLOC02 fixture: allocation inside [@lint.hot_loop] regions.
   Expected findings (asserted by test_lint.ml):
   - line 12: closure allocation (the [fun] passed to Array.iter)
   - line 19: ref allocation via allocating stdlib call
   - line 26: tuple construction
   - line 33: transitive, via the local helper [boxed]
   The clean cases below must produce nothing. *)

(* 1. closure allocated per call in a marked binding *)
let[@lint.hot_loop] hot_sum (a : int array) =
  let total = ref 0 in
  Array.iter (fun x -> total := !total + x) a;
  !total

(* 2. allocating stdlib call in a marked expression region *)
let ref_in_loop n =
  let acc = Array.make n 0 in
  (for i = 0 to n - 1 do
     let cell = ref i in
     acc.(i) <- !cell
   done) [@lint.hot_loop];
  acc

(* 3. tuple built on every iteration *)
let[@lint.hot_loop] pair_walk (a : int array) =
  let best = ref (0, 0) in
  Array.iteri (fun i x -> if x > snd !best then best := (i, x)) a;
  !best

(* 4. transitive: helper allocates, marked caller reaches it *)
let box_it x = Some x

let[@lint.hot_loop] hot_via_helper (a : int array) =
  let n = Array.length a in
  let out = Array.make n None in
  for i = 0 to n - 1 do
    out.(i) <- box_it a.(i)
  done;
  out

(* clean: toplevel recursion, flat arrays, no allocation *)
let rec clean_scan a x i =
  i < Array.length a && (a.(i) = x || clean_scan a x (i + 1))

let[@lint.hot_loop] clean_member a x = clean_scan a x 0

(* clean: raising paths are exempt *)
let[@lint.hot_loop] clean_checked a i =
  if i < 0 || i >= Array.length a then invalid_arg "clean_checked: bounds";
  a.(i)

(* clean: unmarked code may allocate freely *)
let unmarked_builder n = List.init n (fun i -> (i, i * i))
