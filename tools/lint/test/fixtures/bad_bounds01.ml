(* BOUNDS01 fixture: untrusted binary reads must be dominated by a
   length check that raises Parse_error — inline or through a checker
   helper.  Expected findings are asserted by test_lint.ml. *)

exception Parse_error of string

(* 1. raw read with no bounds check anywhere in the function *)
let bad_word (s : string) off = Int64.to_int (String.get_int64_le s off)

(* 2. the check exists but raises the wrong thing: Invalid_argument is a
   programmer error, not a parse diagnostic, so it does not count *)
let bad_guard (s : string) off =
  if off + 4 > String.length s then invalid_arg "short";
  String.get_int32_le s off

(* clean: inline length check raising Parse_error dominates the read *)
let good_inline (s : string) off =
  if off + 8 > String.length s then raise (Parse_error "truncated i64");
  String.get_int64_le s off

(* A checker helper: consults the length, raises Parse_error. *)
let need (s : string) off k =
  if off + k > String.length s then raise (Parse_error "truncated input")

(* clean: the checker call establishes the guard for the whole function *)
let good_checked (s : string) off =
  need s off 12;
  let a = String.get_int64_le s off in
  let b = String.get_int32_le s (off + 8) in
  Int64.add a (Int64.of_int32 b)

(* clean: closures inherit the guard at their creation point (the
   Array.init-under-guard idiom of the io readers) *)
let good_closure (s : string) off n =
  need s off (8 * n);
  Array.init n (fun i -> String.get_int64_le s (off + (8 * i)))
