(* CMP01 fixture (checked as a hot-path module). *)

let table () = Hashtbl.create 64
(* line 3: polymorphic Hashtbl.create *)

(* Not flagged: keyed tables. *)
module Itbl = Hashtbl.Make (Int)

let keyed () = Itbl.create 64
