(* CSR01 fixture: retired array-materializing adjacency accessors. *)

let s g v = Digraph.succ g v
(* line 3 *)

let p g v = Digraph.pred g v
(* line 6 *)

let all g = Digraph.edges g
(* line 9 *)

let escaped g = Array.map (Digraph.succ g) [| 0; 1 |]
(* line 12 *)

(* Not flagged: the slice/fold replacements, and other modules' names. *)
let ok g v = Digraph.fold_succ g v (fun acc w -> w :: acc) []
let ok2 g v = Digraph.succ_slice g v
let ok3 g = Digraph.edge_array g
let ok4 m = Overlay.edges m

(* Suppression works for CSR01 like any other rule. *)
let legacy g v = Digraph.succ g v (* lint: allow CSR01 *)
