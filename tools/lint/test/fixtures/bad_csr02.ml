(* CSR02 fixture: the dense CSR escape hatch used outside lib/graph. *)

let offsets g = fst (Digraph.out_csr g)
(* line 3 *)

let in_adjacency g = snd (Digraph.in_csr g)
(* line 6 *)

let ok g v = Digraph.succ_slice g v
let ok2 g v = Digraph.iter_succ g v ignore
let ok3 g v = Digraph.fold_succ g v (fun acc w -> w :: acc) []

(* Suppression works for CSR02 like any other rule. *)
let dense g = Digraph.out_csr g (* lint: allow CSR02 *)
