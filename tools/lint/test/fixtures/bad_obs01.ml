(* OBS01 fixture: raw clocks, linted with a display path outside lib/obs. *)

let now () = Unix.gettimeofday ()
(* line 3 *)

let cpu () = Sys.time ()
(* line 6 *)

let lbl () = UnixLabels.gettimeofday ()
(* line 9 *)

let escaped fs = List.map Unix.gettimeofday fs
(* line 12 *)

(* Not flagged: the Obs clock itself and other modules' time functions. *)
let ok () = Obs.Clock.now_ns ()
let ok2 f = Obs.time f
let ok3 q = Queue.take q

(* Suppression works for OBS01 like any other rule. *)
let legacy () = Unix.gettimeofday () (* lint: allow OBS01 *)
