(* OBS02 fixture: direct console output, linted with a display path under
   lib/server or lib/parallel (the rule is quiet anywhere else). *)
let banner () = print_string "serving\n"
(* line 3 *)

let note () = print_endline "ready"
(* line 6 *)

let complain () = prerr_endline "oops"
(* line 9 *)

let progress n = Printf.printf "done %d\n" n
(* line 12 *)

let moan n = Printf.eprintf "failed %d\n" n
(* line 15 *)

let fancy n = Format.printf "%d@." n
(* line 18 *)

(* Not flagged: building strings, logging through Obs.Log, and writing to
   an explicit channel a caller handed over. *)
let render n = Printf.sprintf "done %d" n
let log_it n = Obs.Log.info "done" ~fields:[ ("n", Obs.Log.Int n) ]
let to_chan oc n = Printf.fprintf oc "done %d\n" n

(* Suppression works for OBS02 like any other rule. *)
let legacy () = print_endline "v0" (* lint: allow OBS02 *)
