(* PARA01 fixture: closures passed to Pool entry points that mutate
   captured state.  Lines matter -- test_lint.ml asserts them. *)

let bad_ref pool n =
  let total = ref 0 in
  Pool.parallel_for pool ~n (fun i -> total := !total + i);
  (* line 6: `:=` on captured ref *)
  !total

let bad_incr pool n =
  let hits = ref 0 in
  Pool.parallel_for pool ~n (fun _ -> incr hits);
  (* line 12: `incr` on captured ref *)
  !hits

let bad_hashtbl pool n =
  let seen = Hashtbl.create 16 in
  Pool.parallel_for pool ~n (fun i -> Hashtbl.replace seen i ());
  (* line 18: Hashtbl.replace on captured table *)
  Hashtbl.length seen

let bad_buffer pool n =
  let buf = Buffer.create 64 in
  Pool.parallel_for_ranges pool ~n (fun lo _hi ->
      Buffer.add_string buf (string_of_int lo));
  (* line 25: Buffer.add_string on captured buffer *)
  Buffer.contents buf

(* The sanctioned pattern: disjoint writes into a shared array, and state
   created inside the closure -- no findings below this line. *)
let good pool n =
  let out = Array.make n 0 in
  Pool.parallel_for pool ~n (fun i -> out.(i) <- i * i);
  Pool.parallel_for_ranges pool ~n (fun lo hi ->
      let scratch = ref 0 in
      let local_tbl = Hashtbl.create 8 in
      for i = lo to hi - 1 do
        scratch := !scratch + i;
        Hashtbl.replace local_tbl i !scratch
      done;
      out.(lo) <- !scratch);
  out
