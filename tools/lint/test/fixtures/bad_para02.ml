(* PARA02 fixture: interprocedural escape of mutable state into Pool
   closures.  Self-contained: a local [Pool] module stands in for the
   repo's worker pool (the rule matches entry points by their last two
   name components).  Expected findings are asserted by test_lint.ml. *)

module Pool = struct
  type t = unit

  let default () = ()

  let parallel_for (_ : t) ~n f =
    for i = 0 to n - 1 do
      f i
    done

  let parallel_map (_ : t) f (a : int array) = Array.map f a
end

(* Helper that mutates its first parameter: invisible to the syntactic
   PARA01, which only sees the call [bump counter] inside the closure. *)
let bump r = incr r

(* 1. captured ref mutated through a helper call *)
let count_all pool n =
  let counter = ref 0 in
  Pool.parallel_for pool ~n (fun _i -> bump counter);
  !counter

(* Global mutable state and a helper that writes it. *)
let tally = ref 0

let note () = tally := !tally + 1

(* 2. global mutated through a helper call *)
let count_global pool n =
  Pool.parallel_for pool ~n (fun _i -> note ());
  !tally

type acc = { mutable cell : int }

(* 3. alias of a captured value: the projection [state] -> field write *)
let race_field pool n (state : acc) =
  Pool.parallel_for pool ~n (fun i -> state.cell <- state.cell + i)

let add_into r x = r := !r + x

(* 4. partial application: [add_into total] is built once, so [total] is
   shared by every iteration *)
let sum_partial pool n =
  let total = ref 0 in
  Pool.parallel_for pool ~n (add_into total);
  !total

(* clean: disjoint writes to a shared array are the Pool contract *)
let fill pool n =
  let out = Array.make n 0 in
  Pool.parallel_for pool ~n (fun i -> out.(i) <- i * i);
  out

(* clean: Atomic state is sanctioned *)
let count_atomic pool n =
  let hits = Atomic.make 0 in
  Pool.parallel_for pool ~n (fun _i -> Atomic.incr hits);
  Atomic.get hits

(* clean: state defined inside the closure is per-iteration *)
let local_state pool n =
  Pool.parallel_for pool ~n (fun i ->
      let scratch = ref i in
      scratch := !scratch * 2;
      ignore !scratch)
