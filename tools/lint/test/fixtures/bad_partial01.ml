(* PARTIAL01 fixture. *)

let first xs = List.hd xs
(* line 3 *)

let rest xs = List.tl xs
(* line 6 *)

let third xs = List.nth xs 2
(* line 9 *)

let force o = Option.get o
(* line 12 *)

let lookup tbl k = Hashtbl.find tbl k
(* line 15 *)

let pick p xs = List.find p xs
(* line 18 *)

let cut s = String.index s ','
(* line 21 *)

(* Not flagged: total versions. *)
let first_opt = function [] -> None | x :: _ -> Some x
let lookup_opt tbl k = Hashtbl.find_opt tbl k
let pick_opt p xs = List.find_opt p xs
let cut_opt s = String.index_opt s ','
