(* PARTIAL01 fixture. *)

let first xs = List.hd xs
(* line 3 *)

let rest xs = List.tl xs
(* line 6 *)

let third xs = List.nth xs 2
(* line 9 *)

let force o = Option.get o
(* line 12 *)

(* Not flagged: total versions. *)
let first_opt = function [] -> None | x :: _ -> Some x
