(* POLY01 fixture (checked as a hot-path module). *)

let sort_ids (a : int array) = Array.sort compare a
(* line 3: compare escapes as a function argument *)

let widest xs = List.fold_left max 0 xs
(* line 6: max escapes (and is polymorphic even applied) *)

let clamp lo x = min lo x
(* line 9: min applied -- still flagged, never specialised *)

let seed_of name = Hashtbl.hash name
(* line 12: Hashtbl.hash *)

let partial_cmp x = compare x
(* line 15: partial application escapes *)

(* Not flagged: direct full applications specialise at known types, and a
   local monomorphic rebinding shadows the polymorphic one. *)
let direct_eq (a : int) (b : int) = a = b && a <> b + 1

let compare (a : int) (b : int) = if a < b then -1 else if a > b then 1 else 0
let uses_shadowed (a : int array) = Array.sort compare a
