(* SPAN01 fixture: Obs.begin_span / end_span pairing on all paths.
   Self-contained: a local [Obs] stands in for the repo's observability
   layer (the rule matches by the last two name components).  Expected
   findings are asserted by test_lint.ml. *)

module Obs = struct
  let begin_span (_ : string) = ()
  let end_span () = ()
end

(* 1. span opened and never closed: flagged at the binding *)
let leak x =
  Obs.begin_span "leak";
  x + 1

(* 2. branches disagree on the open-span count *)
let branchy c x =
  Obs.begin_span "branchy";
  (if c then Obs.end_span ());
  x

(* 3. raise crosses an open span: the exception edge would leak it *)
let raisy n =
  Obs.begin_span "raisy";
  if n < 0 then invalid_arg "raisy: negative";
  let r = n * 2 in
  Obs.end_span ();
  r

(* 4. loop body must be span-neutral *)
let loopy n =
  let i = ref 0 in
  while !i < n do
    Obs.begin_span "iter";
    incr i
  done

(* clean: balanced on the straight path *)
let ok x =
  Obs.begin_span "ok";
  let r = x * 3 in
  Obs.end_span ();
  r

(* clean: both arms balanced, raising arm checked before the span opens *)
let ok_branches c x =
  if x < 0 then invalid_arg "ok_branches: negative";
  Obs.begin_span "ok_branches";
  let r = if c then x + 1 else x - 1 in
  Obs.end_span ();
  r

(* clean: loop neutral — every iteration closes what it opens *)
let ok_loop n =
  let i = ref 0 in
  while !i < n do
    Obs.begin_span "iter";
    incr i;
    Obs.end_span ()
  done
