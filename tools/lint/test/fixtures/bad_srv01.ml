(* SRV01 fixture: blocking primitives, linted with a display path under
   lib/server (the rule is quiet anywhere else). *)
let nap () = Unix.sleep 1
(* line 3 *)

let napf () = Unix.sleepf 0.25
(* line 6 *)

let delay () = Thread.delay 0.25
(* line 9 *)

let slurp ic b = really_input ic b 0 4096
(* line 12 *)

let sip ic = really_input_string ic 16
(* line 15 *)

let next ic = input_line ic
(* line 18 *)

(* Not flagged: bounded single reads and the select-driven primitives the
   serving loop is built from. *)
let chunk fd b = Unix.read fd b 0 (Bytes.length b)
let bounded ic b = In_channel.input ic b 0 (Bytes.length b)
let wait r = Unix.select r [] [] 0.25

(* Suppression works for SRV01 like any other rule. *)
let legacy () = Unix.sleep 1 (* lint: allow SRV01 *)
