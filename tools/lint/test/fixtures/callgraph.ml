(* Call-graph fixture: def/use-resolved edges across nested modules,
   asserted by test_lint.ml (Lint_program.callees). *)

let double x = x + x

module Inner = struct
  let twice y = double y
end

let entry z = Inner.twice (double z)

let unused = 0
