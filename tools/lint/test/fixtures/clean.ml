(* A clean hot-path module: nothing to report. *)

module Itbl = Hashtbl.Make (Int)

let imax (a : int) (b : int) = if a >= b then a else b

let widest xs = List.fold_left imax 0 xs

let sort_ids (a : int array) = Array.sort Int.compare a

let first_opt = function [] -> None | x :: _ -> Some x

let histogram xs =
  let t = Itbl.create 16 in
  List.iter
    (fun x ->
      match Itbl.find_opt t x with
      | Some c -> Itbl.replace t x (c + 1)
      | None -> Itbl.replace t x 1)
    xs;
  t

let fill pool n =
  let out = Array.make n 0 in
  Pool.parallel_for pool ~n (fun i -> out.(i) <- 2 * i);
  out
