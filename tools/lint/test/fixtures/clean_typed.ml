(* Clean fixture for the typed tier: exercises the idioms near every
   typed rule without violating any, and must stay clean under the full
   eleven-rule run (both tiers).  Self-contained so it typechecks against
   the stdlib alone. *)

module Pool = struct
  type t = unit

  let parallel_for (_ : t) ~n f =
    for i = 0 to n - 1 do
      f i
    done
end

module Obs = struct
  let begin_span (_ : string) = ()
  let end_span () = ()
end

exception Parse_error of string

(* PARA02-adjacent: disjoint array writes and closure-local state. *)
let squares pool n =
  let out = Array.make n 0 in
  Pool.parallel_for pool ~n (fun i ->
      let x = i * i in
      out.(i) <- x);
  out

(* BOUNDS01-adjacent: checker-dominated read. *)
let need (s : string) off k =
  if off + k > String.length s then raise (Parse_error "truncated")

let word (s : string) off =
  need s off 8;
  String.get_int64_le s off

(* ALLOC02-adjacent: marked region built from toplevel recursion. *)
let rec scan a x i =
  i < Array.length a && (a.(i) = x || scan a x (i + 1))

let[@lint.hot_loop] member a x = scan a x 0

(* SPAN01-adjacent: balanced span with the check hoisted above it. *)
let timed n =
  if n < 0 then invalid_arg "timed: negative";
  Obs.begin_span "timed";
  let r = n * 2 in
  Obs.end_span ();
  r
