(* Every violation below carries an explicit suppression; the linter must
   report nothing for this file. *)

(* Trailing same-line comment form. *)
let t () = Hashtbl.create 64 (* lint: allow CMP01 *)

(* Comment-above form, with justification prose around the directive. *)
(* This table is tiny and cold by construction.  lint: allow CMP01 *)
let t2 () = Hashtbl.create 4

(* Expression attribute form. *)
let t3 () = (Hashtbl.create 8 [@lint.allow "CMP01"])

(* Structure-item attribute form covers the whole binding. *)
let sorted a = Array.sort compare a [@@lint.allow "POLY01"]

(* Multiple rules in one directive. *)
let h name = (Hashtbl.hash name, List.hd [ name ]) (* lint: allow POLY01, PARTIAL01 *)

let para pool n =
  let total = ref 0 in
  (* Provably disjoint in this imaginary scenario.  lint: allow PARA01 *)
  Pool.parallel_for pool ~n (fun i -> total := !total + i);
  !total
