(* Typed-tier suppression fixture: every violation below carries either a
   comment directive (scanned from the source) or a [@lint.allow]
   expression attribute (collected from the Typedtree), so the typed
   analysis must report nothing. *)

(* Comment form: covers the comment's lines and the next line. *)
let[@lint.hot_loop] hot_comment (a : int array) =
  (* lint: allow ALLOC02 -- fixture: demonstrating the comment form *)
  Array.to_list a

(* Expression attribute form. *)
let[@lint.hot_loop] hot_attr (a : int array) =
  (Array.to_list a [@lint.allow "ALLOC02"])

module Pool = struct
  let parallel_for () ~n f =
    for i = 0 to n - 1 do
      f i
    done
end

(* Comment form on a typed PARA02 finding. *)
let racy_but_reviewed n =
  let total = ref 0 in
  Pool.parallel_for () ~n (fun i ->
      (* lint: allow PARA01 PARA02 -- fixture: demonstrating that one
         directive can silence both tiers on the same line *)
      total := !total + i);
  !total
