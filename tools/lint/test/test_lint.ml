(* Unit tests for qpgc-lint: each fixture has a known set of (line, rule)
   diagnostics, asserted exactly.  Fixtures are copied into the test's
   sandbox by the dune [deps] clause, so paths are relative. *)

let fixture name = Filename.concat "fixtures" name

(* Lint a fixture as a hot-path module and return its (line, rule) pairs in
   report order. *)
let lint ?only name =
  let path = fixture name in
  let r = Lint_driver.lint_file ?only ~hot:true ~display:path path in
  (match r.Lint_driver.errors with
  | [] -> ()
  | e :: _ -> Alcotest.failf "unexpected lint error on %s: %s" name e);
  List.map (fun d -> (d.Lint_diag.line, d.Lint_diag.rule)) r.Lint_driver.diags

let line_rule = Alcotest.(pair int string)

let check_diags name expected actual =
  Alcotest.check (Alcotest.list line_rule) name expected actual

let test_cmp01 () = check_diags "bad_cmp01" [ (3, "CMP01") ] (lint "bad_cmp01.ml")

let test_para01 () =
  check_diags "bad_para01"
    [
      (6, "PARA01");
      (12, "PARA01");
      (17, "CMP01");
      (18, "PARA01");
      (25, "PARA01");
      (36, "CMP01");
    ]
    (lint "bad_para01.ml")

(* --rule / [only] restricts the run to the named rules. *)
let test_para01_only () =
  check_diags "bad_para01 --rule PARA01"
    [ (6, "PARA01"); (12, "PARA01"); (18, "PARA01"); (25, "PARA01") ]
    (lint ~only:[ "PARA01" ] "bad_para01.ml")

let test_partial01 () =
  check_diags "bad_partial01"
    [
      (3, "PARTIAL01");
      (6, "PARTIAL01");
      (9, "PARTIAL01");
      (12, "PARTIAL01");
      (15, "PARTIAL01");
      (18, "PARTIAL01");
      (21, "PARTIAL01");
    ]
    (lint "bad_partial01.ml")

let test_csr01 () =
  check_diags "bad_csr01"
    [ (3, "CSR01"); (6, "CSR01"); (9, "CSR01"); (12, "CSR01") ]
    (lint "bad_csr01.ml")

(* CSR01 is not hot-only: the retired accessors are wrong in cold modules
   (bin/, bench/) too, so the same findings must fire without the hot
   classification. *)
let test_csr01_cold () =
  let r =
    Lint_driver.lint_file ~hot:false ~display:"bad_csr01.ml"
      (fixture "bad_csr01.ml")
  in
  check_diags "bad_csr01 cold"
    [ (3, "CSR01"); (6, "CSR01"); (9, "CSR01"); (12, "CSR01") ]
    (List.map
       (fun d -> (d.Lint_diag.line, d.Lint_diag.rule))
       r.Lint_driver.diags)

let test_csr02 () =
  check_diags "bad_csr02"
    [ (3, "CSR02"); (6, "CSR02") ]
    (lint ~only:[ "CSR02" ] "bad_csr02.ml")

(* CSR02 is scoped by display path: the storage layer itself owns the
   representation and may touch the dense CSR freely. *)
let test_csr02_in_scope () =
  let r =
    Lint_driver.lint_file ~hot:true ~only:[ "CSR02" ]
      ~display:"lib/graph/bad_csr02.ml"
      (fixture "bad_csr02.ml")
  in
  check_diags "bad_csr02 under lib/graph" []
    (List.map
       (fun d -> (d.Lint_diag.line, d.Lint_diag.rule))
       r.Lint_driver.diags)

(* ALLOC01 is scoped by display path, not by the hot classification: it
   fires only when the linted file sits under lib/partition.  [only]
   isolates it from CMP01, which also dislikes the Hashtbl.create line. *)
let test_alloc01 () =
  let r =
    Lint_driver.lint_file ~hot:true ~only:[ "ALLOC01" ]
      ~display:"lib/partition/bad_alloc01.ml"
      (fixture "bad_alloc01.ml")
  in
  check_diags "bad_alloc01"
    [ (3, "ALLOC01"); (5, "ALLOC01"); (7, "ALLOC01"); (9, "ALLOC01") ]
    (List.map
       (fun d -> (d.Lint_diag.line, d.Lint_diag.rule))
       r.Lint_driver.diags)

(* The same file outside lib/partition is clean: other hot directories use
   keyed tables legitimately. *)
let test_alloc01_out_of_scope () =
  let r =
    Lint_driver.lint_file ~hot:true ~only:[ "ALLOC01" ]
      ~display:"lib/graph/bad_alloc01.ml"
      (fixture "bad_alloc01.ml")
  in
  check_diags "bad_alloc01 out of scope" []
    (List.map
       (fun d -> (d.Lint_diag.line, d.Lint_diag.rule))
       r.Lint_driver.diags)

(* OBS01 is scoped like ALLOC01 but inverted: it fires everywhere except
   under lib/obs.  The [lint] helper's display path (fixtures/...) is
   outside lib/obs, so the findings fire. *)
let test_obs01 () =
  check_diags "bad_obs01"
    [ (3, "OBS01"); (6, "OBS01"); (9, "OBS01"); (12, "OBS01") ]
    (lint "bad_obs01.ml")

(* The same file displayed under lib/obs is exempt: that layer wraps the
   raw clock for everyone else. *)
let test_obs01_in_scope () =
  let r =
    Lint_driver.lint_file ~hot:false ~only:[ "OBS01" ]
      ~display:"lib/obs/bad_obs01.ml"
      (fixture "bad_obs01.ml")
  in
  check_diags "bad_obs01 under lib/obs" []
    (List.map
       (fun d -> (d.Lint_diag.line, d.Lint_diag.rule))
       r.Lint_driver.diags)

(* SRV01 is scoped like ALLOC01: it fires only when the linted file sits
   under lib/server — the one layer whose event loop must never block. *)
let test_srv01 () =
  let r =
    Lint_driver.lint_file ~hot:false ~only:[ "SRV01" ]
      ~display:"lib/server/bad_srv01.ml"
      (fixture "bad_srv01.ml")
  in
  check_diags "bad_srv01"
    [
      (3, "SRV01");
      (6, "SRV01");
      (9, "SRV01");
      (12, "SRV01");
      (15, "SRV01");
      (18, "SRV01");
    ]
    (List.map
       (fun d -> (d.Lint_diag.line, d.Lint_diag.rule))
       r.Lint_driver.diags)

(* The same file anywhere else is exempt: retry/backoff sleeps belong in
   the callers (bin/, bench/). *)
let test_srv01_out_of_scope () =
  check_diags "bad_srv01 outside lib/server" []
    (lint ~only:[ "SRV01" ] "bad_srv01.ml")

(* OBS02 covers both multi-domain layers: the daemon's event loop and the
   pool's workers must log through the per-domain Obs.Log buffers. *)
let obs02_expected =
  [
    (3, "OBS02");
    (6, "OBS02");
    (9, "OBS02");
    (12, "OBS02");
    (15, "OBS02");
    (18, "OBS02");
  ]

let obs02_under display =
  let r =
    Lint_driver.lint_file ~hot:false ~only:[ "OBS02" ] ~display
      (fixture "bad_obs02.ml")
  in
  List.map (fun d -> (d.Lint_diag.line, d.Lint_diag.rule)) r.Lint_driver.diags

let test_obs02 () =
  check_diags "bad_obs02 under lib/server" obs02_expected
    (obs02_under "lib/server/bad_obs02.ml");
  check_diags "bad_obs02 under lib/parallel" obs02_expected
    (obs02_under "lib/parallel/bad_obs02.ml")

(* Anywhere else — front ends, bench, tests — printing is the point. *)
let test_obs02_out_of_scope () =
  check_diags "bad_obs02 outside the daemon layers" []
    (lint ~only:[ "OBS02" ] "bad_obs02.ml")

let test_poly01 () =
  check_diags "bad_poly01"
    [
      (3, "POLY01");
      (6, "POLY01");
      (9, "POLY01");
      (12, "POLY01");
      (15, "POLY01");
    ]
    (lint "bad_poly01.ml")

(* Lines 22-23 of bad_poly01.ml rebind [compare] monomorphically and then
   use it; the shadow exempts uses only from its line onward, so the
   earlier escapes (lines 3 and 15) must still be present above. *)

let test_clean () = check_diags "clean" [] (lint "clean.ml")

(* Every violation in suppressed.ml carries one of the suppression forms
   (trailing comment, comment-above, expression attribute, item attribute,
   multi-rule directive); all must silence the finding. *)
let test_suppressed () = check_diags "suppressed" [] (lint "suppressed.ml")

(* The same violations *without* hot classification: hot-only rules
   (POLY01, CMP01) must stay quiet, path-independent ones still fire. *)
let test_cold () =
  let r =
    Lint_driver.lint_file ~hot:false ~display:"bad_poly01.ml"
      (fixture "bad_poly01.ml")
  in
  check_diags "bad_poly01 cold" []
    (List.map
       (fun d -> (d.Lint_diag.line, d.Lint_diag.rule))
       r.Lint_driver.diags)

let test_parse_error () =
  let tmp = Filename.temp_file "lint_broken" ".ml" in
  let oc = open_out tmp in
  output_string oc "let = in\n";
  close_out oc;
  let r = Lint_driver.lint_file ~hot:true ~display:tmp tmp in
  Sys.remove tmp;
  Alcotest.(check bool) "parse error reported" true (r.Lint_driver.errors <> [])

let test_json () =
  let path = fixture "bad_cmp01.ml" in
  let r = Lint_driver.lint_file ~hot:true ~display:path path in
  let json = Lint_diag.list_to_json r.Lint_driver.diags in
  let has sub =
    let n = String.length json and m = String.length sub in
    let rec go i = i + m <= n && (String.sub json i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "json has rule" true (has {|"rule":"CMP01"|});
  Alcotest.(check bool) "json has line" true (has {|"line":3|})

(* ------------------------------------------------------------------ *)
(* Typed (whole-program) tier: fixtures are typechecked in-process
   against the stdlib, so each is self-contained (local Pool/Obs modules,
   local Parse_error). *)

let typed_lint ?only name =
  let path = fixture name in
  let r = Lint_typed_driver.analyze ?only [ path ] in
  (match r.Lint_driver.errors with
  | [] -> ()
  | e :: _ -> Alcotest.failf "unexpected typed lint error on %s: %s" name e);
  List.map (fun d -> (d.Lint_diag.line, d.Lint_diag.rule)) r.Lint_driver.diags

let test_para02 () =
  check_diags "bad_para02"
    [ (26, "PARA02"); (36, "PARA02"); (43, "PARA02"); (51, "PARA02") ]
    (typed_lint ~only:[ "PARA02" ] "bad_para02.ml")

let test_bounds01 () =
  check_diags "bad_bounds01"
    [ (8, "BOUNDS01"); (14, "BOUNDS01") ]
    (typed_lint ~only:[ "BOUNDS01" ] "bad_bounds01.ml")

let test_alloc02 () =
  check_diags "bad_alloc02"
    [
      (11, "ALLOC02");
      (12, "ALLOC02");
      (19, "ALLOC02");
      (26, "ALLOC02");
      (26, "ALLOC02");
      (27, "ALLOC02");
      (27, "ALLOC02");
      (27, "ALLOC02");
      (35, "ALLOC02");
      (37, "ALLOC02");
    ]
    (typed_lint ~only:[ "ALLOC02" ] "bad_alloc02.ml")

let test_span01 () =
  check_diags "bad_span01"
    [ (12, "SPAN01"); (19, "SPAN01"); (25, "SPAN01"); (33, "SPAN01") ]
    (typed_lint ~only:[ "SPAN01" ] "bad_span01.ml")

(* The typed driver also runs the syntactic tier on each unit's source;
   suppression directives (comments and [@lint.allow] attributes) must
   silence findings from both. *)
let test_suppressed_typed () =
  check_diags "suppressed_typed" [] (typed_lint "suppressed_typed.ml")

(* A self-contained clean file must stay clean under the full typed run
   (all eleven rules, both tiers). *)
let test_typed_clean () =
  check_diags "clean_typed" [] (typed_lint "clean_typed.ml")

let test_callgraph () =
  let path = fixture "callgraph.ml" in
  match Lint_cmt.typecheck_ml ~prefix:"" path with
  | Error e -> Alcotest.failf "typecheck failed: %s" e
  | Ok u ->
      let prog = Lint_program.build [ u ] in
      Alcotest.(check (list string))
        "entry edges"
        [ "Callgraph.Inner.twice"; "Callgraph.double" ]
        (Lint_program.callees prog "Callgraph.entry");
      Alcotest.(check (list string))
        "twice edges" [ "Callgraph.double" ]
        (Lint_program.callees prog "Callgraph.Inner.twice");
      Alcotest.(check (list string))
        "double leaf" []
        (Lint_program.callees prog "Callgraph.double")

let () =
  Alcotest.run "qpgc-lint"
    [
      ( "rules",
        [
          Alcotest.test_case "CMP01 fixture" `Quick test_cmp01;
          Alcotest.test_case "PARA01 fixture" `Quick test_para01;
          Alcotest.test_case "PARA01 only" `Quick test_para01_only;
          Alcotest.test_case "PARTIAL01 fixture" `Quick test_partial01;
          Alcotest.test_case "POLY01 fixture" `Quick test_poly01;
          Alcotest.test_case "CSR01 fixture" `Quick test_csr01;
          Alcotest.test_case "CSR01 fires cold" `Quick test_csr01_cold;
          Alcotest.test_case "CSR02 fixture" `Quick test_csr02;
          Alcotest.test_case "CSR02 exempts lib/graph" `Quick
            test_csr02_in_scope;
          Alcotest.test_case "ALLOC01 fixture" `Quick test_alloc01;
          Alcotest.test_case "ALLOC01 scoped to lib/partition" `Quick
            test_alloc01_out_of_scope;
          Alcotest.test_case "OBS01 fixture" `Quick test_obs01;
          Alcotest.test_case "OBS01 exempts lib/obs" `Quick
            test_obs01_in_scope;
          Alcotest.test_case "SRV01 fixture" `Quick test_srv01;
          Alcotest.test_case "SRV01 scoped to lib/server" `Quick
            test_srv01_out_of_scope;
          Alcotest.test_case "OBS02 fixture" `Quick test_obs02;
          Alcotest.test_case "OBS02 scoped to daemon layers" `Quick
            test_obs02_out_of_scope;
        ] );
      ( "classification",
        [
          Alcotest.test_case "clean file" `Quick test_clean;
          Alcotest.test_case "hot-only rules off cold" `Quick test_cold;
        ] );
      ( "typed rules",
        [
          Alcotest.test_case "PARA02 fixture" `Quick test_para02;
          Alcotest.test_case "BOUNDS01 fixture" `Quick test_bounds01;
          Alcotest.test_case "ALLOC02 fixture" `Quick test_alloc02;
          Alcotest.test_case "SPAN01 fixture" `Quick test_span01;
          Alcotest.test_case "clean file (typed)" `Quick test_typed_clean;
          Alcotest.test_case "call graph edges" `Quick test_callgraph;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "all forms silence" `Quick test_suppressed;
          Alcotest.test_case "typed tier forms silence" `Quick
            test_suppressed_typed;
        ] );
      ( "driver",
        [
          Alcotest.test_case "parse error surfaces" `Quick test_parse_error;
          Alcotest.test_case "json output" `Quick test_json;
        ] );
    ]
